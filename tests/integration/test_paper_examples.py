"""Integration tests reproducing the paper's worked examples
(Examples 1.1, 3.1-3.4, 4.1, 5.1-5.4) end to end."""

import pytest

from repro.core.accessibility import accessible_nodes
from repro.core.derive import derive
from repro.core.materialize import materialize
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.dtd.content import Choice, Name, Seq, Star
from repro.workloads.hospital import hospital_dtd, nurse_spec
from repro.xmlmodel.parser import parse_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath

HOSPITAL_DOC = """
<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>carol</name><wardNo>2</wardNo>
          <treatment><trial><bill>900</bill></trial></treatment>
        </patient>
      </patientInfo>
    </clinicalTrial>
    <patientInfo>
      <patient><name>dave</name><wardNo>2</wardNo>
        <treatment><regular><bill>70</bill><medication>iron</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse>nina</nurse></staff></staffInfo>
  </dept>
</hospital>
"""


@pytest.fixture(scope="module")
def document():
    return parse_document(HOSPITAL_DOC)


@pytest.fixture(scope="module")
def spec():
    return nurse_spec(hospital_dtd()).bind(wardNo="2")


@pytest.fixture(scope="module")
def view(spec):
    return derive(spec)


class TestExample11:
    """The inference attack: p1 - p2 identifies clinical-trial
    patients under element filtering, but not under the view."""

    P1 = parse_xpath("//dept//patientInfo/patient/name")
    P2 = parse_xpath("//dept/patientInfo/patient/name")

    def test_attack_works_against_element_filtering(self, document, spec):
        evaluator = XPathEvaluator()
        accessible = {id(node) for node in accessible_nodes(document, spec)}
        p1_names = {
            node.string_value()
            for node in evaluator.evaluate(self.P1, document)
            if id(node) in accessible
        }
        p2_names = {
            node.string_value()
            for node in evaluator.evaluate(self.P2, document)
            if id(node) in accessible
        }
        assert p1_names - p2_names == {"carol"}  # the confidential fact

    def test_attack_fails_against_the_view(self, document, view):
        rewriter = Rewriter(view)
        evaluator = XPathEvaluator()
        p1_names = {
            node.string_value()
            for node in evaluator.evaluate(rewriter.rewrite(self.P1), document)
        }
        p2_names = {
            node.string_value()
            for node in evaluator.evaluate(rewriter.rewrite(self.P2), document)
        }
        assert p1_names == p2_names == {"carol", "dave"}


class TestExample32:
    """The derived view of Fig. 2, production by production."""

    def test_hospital_production(self, view):
        assert view.node("hospital").content == Star(Name("dept"))

    def test_dept_production(self, view):
        assert view.node("dept").content == Seq(
            [Star(Name("patientInfo")), Name("staffInfo")]
        )

    def test_treatment_production(self, view):
        assert view.node("treatment").content == Choice(
            [Name("dummy1"), Name("dummy2")]
        )

    def test_sigma_p1_to_p4(self, view):
        assert (
            str(view.sigma_of("hospital", "dept"))
            == 'dept[*/patient/wardNo = "2"]'
        )
        assert (
            str(view.sigma_of("dept", "patientInfo"))
            == "(clinicalTrial/patientInfo | patientInfo)"
        )
        assert str(view.sigma_of("treatment", "dummy1")) == "trial"
        assert str(view.sigma_of("treatment", "dummy2")) == "regular"

    def test_identity_sigma_elsewhere(self, view):
        assert str(view.sigma_of("patient", "name")) == "name"
        assert str(view.sigma_of("dummy1", "bill")) == "bill"
        assert str(view.sigma_of("dummy2", "medication")) == "medication"


class TestExample33:
    """Materialization of the nurse view."""

    def test_view_tree_shape(self, document, view, spec):
        view_tree = materialize(document, view, spec)
        dept = view_tree.find_all("dept")[0]
        # both the trial patient (carol) and the regular patient (dave)
        # surface under patientInfo elements
        names = sorted(
            node.string_value() for node in dept.find_all("name")
        )
        assert names == ["carol", "dave"]
        # treatments are relabeled
        treatments = dept.find_all("treatment")
        child_labels = {
            child.label
            for treatment in treatments
            for child in treatment.element_children()
        }
        assert child_labels == {"dummy1", "dummy2"}
        # staff subtree copied verbatim
        assert dept.find_all("nurse")[0].string_value() == "nina"

    def test_clinicaltrial_not_copied(self, document, view, spec):
        view_tree = materialize(document, view, spec)
        assert view_tree.find_all("clinicalTrial") == []


class TestExample41:
    """//patient//bill rewrites to p1/p2/p3."""

    def test_rewritten_query(self, view):
        result = str(Rewriter(view).rewrite(parse_xpath("//patient//bill")))
        assert result == (
            '/hospital/dept[*/patient/wardNo = "2"]'
            "/(clinicalTrial/patientInfo | patientInfo)/patient"
            "/(treatment/trial/bill | treatment/regular/bill)"
        )

    def test_rewritten_query_evaluates_correctly(self, document, view):
        rewriter = Rewriter(view)
        evaluator = XPathEvaluator()
        bills = sorted(
            node.string_value()
            for node in evaluator.evaluate(
                rewriter.rewrite(parse_xpath("//patient//bill")), document
            )
        )
        assert bills == ["70", "900"]


class TestExample54:
    """optimize(//patient U //(patient U staff)[//medication])."""

    QUERY = parse_xpath("//patient | //(patient | staff)[//medication]")

    def test_union_pruned_to_first_branch(self):
        dtd = hospital_dtd()
        optimizer = Optimizer(dtd)
        optimized = optimizer.optimize(self.QUERY)
        text = str(optimized)
        # the paper's p_o1/p_o2: hospital/dept then the
        # (clinicalTrial U eps)/patientInfo/patient expansion; the
        # qualified second branch is contained in the first and dropped
        assert "medication" not in text
        assert "staff" not in text
        assert "patient" in text

    def test_equivalence_on_instances(self):
        from repro.dtd.generator import DocumentGenerator

        dtd = hospital_dtd()
        optimizer = Optimizer(dtd)
        optimized = optimizer.optimize(self.QUERY)
        evaluator = XPathEvaluator()
        for seed in (3, 7, 11):
            document = DocumentGenerator(dtd, seed=seed, max_branch=4).generate()
            expected = {
                id(node) for node in evaluator.evaluate(self.QUERY, document)
            }
            actual = {
                id(node) for node in evaluator.evaluate(optimized, document)
            }
            assert expected == actual
