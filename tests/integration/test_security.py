"""Security-property integration tests: no query over the view can
observe confidential labels, content, or structure."""

import itertools

import pytest

from repro.core.accessibility import compute_accessibility
from repro.core.engine import SecureQueryEngine
from repro.workloads.hospital import hospital_document, hospital_dtd, nurse_spec
from repro.xmlmodel.serialize import serialize
from repro.xpath.parser import parse_xpath

#: A broad battery of probing queries a curious nurse might try.
PROBES = [
    "//clinicalTrial",
    "//trial",
    "//regular",
    "//clinicalTrial//name",
    "dept/clinicalTrial",
    "//*[trial]",
    "//*[regular or trial]",
    "//treatment[trial]/bill",
    "hospital/dept/clinicalTrial/patientInfo",
    "//patient[../../clinicalTrial]",
]

GENERAL_QUERIES = [
    "//patient",
    "//patient/name",
    "//treatment",
    "//*",
    "*",
    "//dummy1",
    "//dummy2",
    "//treatment/*",
    "//patient//*",
    ".",
]


@pytest.fixture(scope="module")
def engine():
    dtd = hospital_dtd()
    built = SecureQueryEngine(dtd)
    built.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return built


@pytest.fixture(scope="module")
def document():
    return hospital_document(seed=7, max_branch=4)


@pytest.fixture(scope="module")
def accessibility(document):
    spec = nurse_spec(hospital_dtd()).bind(wardNo="2")
    return compute_accessibility(document, spec)


class TestLabelConfidentiality:
    @pytest.mark.parametrize("probe", PROBES)
    def test_probes_return_nothing_or_no_secrets(self, engine, document, probe):
        try:
            results = engine.query("nurse", probe, document)
        except Exception:  # noqa: BLE001 - syntax probes may fail cleanly
            return
        for result in results:
            if isinstance(result, str):
                continue
            rendered = serialize(result)
            for secret in ("clinicalTrial", "<trial", "<regular"):
                assert secret not in rendered, probe

    @pytest.mark.parametrize("query", GENERAL_QUERIES)
    def test_no_secret_labels_in_any_projection(self, engine, document, query):
        for result in engine.query("nurse", query, document):
            if isinstance(result, str):
                continue
            labels = {element.label for element in result.iter_elements()}
            assert not labels & {"clinicalTrial", "trial", "regular"}, query


class TestContentConfidentiality:
    def test_other_ward_patients_invisible(self, engine, document, accessibility):
        visible_names = set()
        for query in GENERAL_QUERIES:
            for result in engine.query("nurse", query, document):
                if isinstance(result, str):
                    continue
                visible_names.update(
                    node.string_value() for node in result.find_all("name")
                )
        hidden_names = {
            node.string_value()
            for node in document.find_all("name")
            if not accessibility[id(node)]
        }
        # names of patients the policy hides never surface
        assert not visible_names & (
            hidden_names
            - {
                node.string_value()
                for node in document.find_all("name")
                if accessibility[id(node)]
            }
        )

    def test_raw_mode_documented_leak_is_projected_away(self, engine, document):
        # raw document nodes would expose the 'regular' label...
        from repro.core.options import ExecutionOptions

        raw = engine.query(
            "nurse",
            "//dummy2",
            document,
            options=ExecutionOptions(project=False),
        )
        assert any(node.label == "regular" for node in raw)
        # ...which is why the default projects:
        projected = engine.query("nurse", "//dummy2", document)
        assert all(element.label == "dummy2" for element in projected)


class TestInferenceControl:
    def test_example_11_queries_coincide(self, engine, document):
        p1 = engine.rewrite_query("nurse", "//dept//patientInfo/patient/name")
        p2 = engine.rewrite_query("nurse", "//dept/patientInfo/patient/name")
        from repro.xpath.evaluator import evaluate

        names_p1 = {id(n) for n in evaluate(p1, document)}
        names_p2 = {id(n) for n in evaluate(p2, document)}
        assert names_p1 == names_p2

    def test_view_dtd_reveals_no_document_structure(self, engine):
        exposed = engine.view_dtd_text("nurse")
        document_only_types = {"clinicalTrial", "trial", "regular"}
        assert not any(name in exposed for name in document_only_types)


class TestMultiPolicyIsolation:
    def test_two_wards_see_disjoint_extra_patients(self, document):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("w1", nurse_spec(dtd), wardNo="1")
        engine.register_policy("w2", nurse_spec(dtd), wardNo="2")
        w1 = {
            element.string_value()
            for element in engine.query("w1", "//patient/name", document)
        }
        w2 = {
            element.string_value()
            for element in engine.query("w2", "//patient/name", document)
        }
        # the policies are distinct restrictions; at least one ward must
        # differ on this document (seeded so both wards exist)
        assert w1 != w2 or (not w1 and not w2)

    def test_policies_do_not_interfere(self, document):
        dtd = hospital_dtd()
        solo = SecureQueryEngine(dtd)
        solo.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        multi = SecureQueryEngine(dtd)
        multi.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        from repro.workloads.hospital import doctor_spec

        multi.register_policy("doctor", doctor_spec(dtd))
        lone = solo.query("nurse", "//patient/name", document)
        shared = multi.query("nurse", "//patient/name", document)
        assert [serialize(a) for a in lone] == [serialize(b) for b in shared]
