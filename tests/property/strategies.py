"""Shared hypothesis strategies: random XPath queries, content models,
DTDs, and access specifications."""

from hypothesis import strategies as st

from repro.dtd.content import (
    Choice,
    EPSILON,
    Name,
    Opt,
    Plus,
    STR,
    Seq,
    Star,
)
from repro.dtd.dtd import DTD
from repro.xpath.ast import (
    Descendant,
    EPSILON as EPS_PATH,
    Label,
    QAnd,
    QEquals,
    QNot,
    QOr,
    QPath,
    TEXT,
    WILDCARD,
    descendant,
    qualified,
    slash,
    union,
)

DEFAULT_LABELS = ("alpha", "beta", "gamma", "delta", "r-e.x")


def path_strategy(labels=DEFAULT_LABELS, max_leaves=8, allow_negation=True):
    """Random path expressions of the fragment C over a label pool."""
    label_step = st.sampled_from(labels).map(Label)
    base = st.one_of(
        label_step,
        st.just(WILDCARD),
        st.just(EPS_PATH),
    )

    def extend(children):
        qualifier = qualifier_strategy(
            children, labels, allow_negation=allow_negation
        )
        return st.one_of(
            st.tuples(children, children).map(lambda pair: slash(*pair)),
            children.map(descendant),
            st.lists(children, min_size=2, max_size=3).map(union),
            st.tuples(children, qualifier).map(
                lambda pair: qualified(pair[0], pair[1])
            ),
        )

    return st.recursive(base, extend, max_leaves=max_leaves)


def qualifier_strategy(paths, labels, allow_negation=True):
    from repro.xpath.ast import qpath

    base = st.one_of(
        paths.map(qpath),
        st.tuples(paths, st.sampled_from(["1", "2", "x"])).map(
            lambda pair: QEquals(*pair)
        ),
    )

    def extend(children):
        from repro.xpath.ast import qand, qnot, qor

        options = [
            st.tuples(children, children).map(lambda pair: qand(*pair)),
            st.tuples(children, children).map(lambda pair: qor(*pair)),
        ]
        if allow_negation:
            options.append(children.map(qnot))
        return st.one_of(*options)

    return st.recursive(base, extend, max_leaves=4)


def content_model_strategy(names=("a", "b", "c"), max_leaves=6):
    """Random content models (general form, nested)."""
    base = st.one_of(
        st.sampled_from(names).map(Name),
        st.just(EPSILON),
    )

    def extend(children):
        items = st.lists(children, min_size=1, max_size=3)
        return st.one_of(
            items.map(Seq),
            items.map(Choice),
            children.map(Star),
            children.map(Opt),
            children.map(Plus),
        )

    return st.recursive(base, extend, max_leaves=max_leaves)


@st.composite
def dag_dtd_strategy(draw, min_types=3, max_types=7):
    """Random consistent, normal-form DAG DTDs: each type's production
    references only strictly later types, so cycles are impossible and
    instances always exist."""
    count = draw(st.integers(min_types, max_types))
    names = ["t%d" % index for index in range(count)]
    productions = {}
    for index, name in enumerate(names):
        later = names[index + 1 :]
        if not later:
            productions[name] = STR
            continue
        shape = draw(st.sampled_from(["str", "epsilon", "seq", "choice", "star"]))
        if shape == "str":
            productions[name] = STR
        elif shape == "epsilon":
            productions[name] = EPSILON
        elif shape == "star":
            productions[name] = Star(Name(draw(st.sampled_from(later))))
        else:
            chosen = draw(
                st.lists(
                    st.sampled_from(later), min_size=1, max_size=3, unique=True
                )
            )
            atoms = [Name(child) for child in chosen]
            if shape == "seq":
                productions[name] = atoms[0] if len(atoms) == 1 else Seq(atoms)
            else:
                productions[name] = (
                    atoms[0] if len(atoms) == 1 else Choice(atoms)
                )
    return DTD(names[0], productions)


@st.composite
def annotation_strategy(draw, dtd):
    """A random Y/N access specification over a DTD (no conditionals,
    so materialization never aborts)."""
    from repro.core.spec import AccessSpec

    spec = AccessSpec(dtd, name="random")
    for parent in dtd.element_types:
        for child in dtd.children_of(parent):
            choice = draw(st.sampled_from(["inherit", "inherit", "Y", "N"]))
            if choice != "inherit":
                spec.annotate(parent, child, choice)
    return spec
