"""Property: the columnar backend is answer-preserving.

For random DAG DTDs, random Y/N policies, random conforming documents,
and random fragment-``C`` queries (with qualifiers), executing
set-at-a-time over the :class:`~repro.xmlmodel.store.NodeTable` returns
exactly the interpreter's node list — node-for-node, in document order
— both at the raw plan layer and through the engine.  The workload
queries (Adex Q1-Q4, the hospital suite) are pinned explicitly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.dtd.generator import DocumentGenerator
from repro.workloads.adex import adex_engine
from repro.workloads.documents import dataset
from repro.workloads.hospital import nurse_engine
from repro.workloads.queries import ADEX_QUERY_TEXTS, HOSPITAL_QUERY_TEXTS
from repro.xmlmodel.serialize import serialize
from repro.xmlmodel.store import build_node_table
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.plan import PlanRuntime, compile_path

from tests.property.strategies import (
    annotation_strategy,
    dag_dtd_strategy,
    path_strategy,
)

VIRTUAL = ExecutionOptions()
COLUMNAR = ExecutionOptions(strategy="columnar")
VIRTUAL_RAW = ExecutionOptions(project=False)
COLUMNAR_RAW = ExecutionOptions(project=False, strategy="columnar")


def _rendered(values):
    return [
        value if isinstance(value, str) else serialize(value)
        for value in values
    ]


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_columnar_plan_matches_interpreter(data):
    """Plan layer: for random documents and random paths (qualifiers
    included), the columnar kernels return the interpreter's exact
    node list in document order."""
    dtd = data.draw(dag_dtd_strategy())
    seed = data.draw(st.integers(0, 500))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    query = data.draw(
        path_strategy(labels=tuple(dtd.element_types), max_leaves=5)
    )
    expected = XPathEvaluator().evaluate(query, document, ordered=True)
    store = build_node_table(document)
    actual = compile_path(query).execute(
        document, runtime=PlanRuntime(store=store), ordered=True
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_columnar_plan_matches_interpreter_at_inner_contexts(data):
    """Same parity with the frontier seeded at every element of a
    random label, not just the root."""
    dtd = data.draw(dag_dtd_strategy())
    seed = data.draw(st.integers(0, 500))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    labels = tuple(dtd.element_types)
    query = data.draw(path_strategy(labels=labels, max_leaves=4))
    context_label = data.draw(st.sampled_from(labels))
    contexts = document.find_all(context_label)
    expected = XPathEvaluator().evaluate(
        query, list(contexts), ordered=True
    )
    store = build_node_table(document)
    actual = compile_path(query).execute(
        list(contexts), runtime=PlanRuntime(store=store), ordered=True
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_columnar_engine_is_answer_preserving(data):
    """Engine layer: random policy + random query, columnar answers ==
    virtual answers (projected renderings and raw node identities)."""
    dtd = data.draw(dag_dtd_strategy())
    spec = data.draw(annotation_strategy(dtd))
    seed = data.draw(st.integers(0, 500))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    query = data.draw(
        path_strategy(labels=tuple(dtd.element_types), max_leaves=5)
    )
    engine = SecureQueryEngine(dtd)
    engine.register_policy("p", spec)

    virtual = engine.query("p", query, document, VIRTUAL)
    columnar = engine.query("p", query, document, COLUMNAR)
    assert _rendered(columnar) == _rendered(virtual)
    assert columnar.report.strategy == "columnar"
    assert columnar.report.result_count == virtual.report.result_count

    raw_virtual = engine.query("p", query, document, VIRTUAL_RAW)
    raw_columnar = engine.query("p", query, document, COLUMNAR_RAW)
    assert [id(node) for node in raw_columnar] == [
        id(node) for node in raw_virtual
    ]


@pytest.fixture(scope="module")
def adex():
    return adex_engine(), dataset("D1", scale=0.05)


@pytest.fixture(scope="module")
def hospital():
    from repro.workloads.hospital import hospital_document

    return nurse_engine(), hospital_document(seed=13, max_branch=4)


@pytest.mark.parametrize("name", sorted(ADEX_QUERY_TEXTS))
def test_adex_queries_agree(adex, name):
    engine, document = adex
    policy = engine.policies()[0]
    query = ADEX_QUERY_TEXTS[name]
    virtual = engine.query(policy, query, document, VIRTUAL)
    columnar = engine.query(policy, query, document, COLUMNAR)
    assert _rendered(columnar) == _rendered(virtual), name
    raw_virtual = engine.query(policy, query, document, VIRTUAL_RAW)
    raw_columnar = engine.query(policy, query, document, COLUMNAR_RAW)
    assert [id(node) for node in raw_columnar] == [
        id(node) for node in raw_virtual
    ], name


@pytest.mark.parametrize("name", sorted(HOSPITAL_QUERY_TEXTS))
def test_hospital_queries_agree(hospital, name):
    engine, document = hospital
    policy = engine.policies()[0]
    query = HOSPITAL_QUERY_TEXTS[name]
    virtual = engine.query(policy, query, document, VIRTUAL)
    columnar = engine.query(policy, query, document, COLUMNAR)
    assert _rendered(columnar) == _rendered(virtual), name
    raw_virtual = engine.query(policy, query, document, VIRTUAL_RAW)
    raw_columnar = engine.query(policy, query, document, COLUMNAR_RAW)
    assert [id(node) for node in raw_columnar] == [
        id(node) for node in raw_virtual
    ], name
