"""Property-based tests for content models: the derivative matcher
agrees with an independent backtracking reference implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.content import (
    Choice,
    ContentModel,
    Epsilon,
    Name,
    Opt,
    Plus,
    Seq,
    Star,
    Str,
    TEXT_SYMBOL,
    _EmptySet,
)

from tests.property.strategies import content_model_strategy

ALPHABET = ("a", "b", "c")


def reference_match(content: ContentModel, word, start=0):
    """Independent reference matcher: the set of positions reachable
    after consuming a prefix of ``word[start:]`` with ``content``."""
    if isinstance(content, Epsilon):
        return {start}
    if isinstance(content, _EmptySet):
        return set()
    if isinstance(content, Str):
        result = {start}
        position = start
        while position < len(word) and word[position] == TEXT_SYMBOL:
            position += 1
            result.add(position)
        return result
    if isinstance(content, Name):
        if start < len(word) and word[start] == content.name:
            return {start + 1}
        return set()
    if isinstance(content, Seq):
        positions = {start}
        for item in content.items:
            positions = {
                after
                for middle in positions
                for after in reference_match(item, word, middle)
            }
        return positions
    if isinstance(content, Choice):
        result = set()
        for item in content.items:
            result |= reference_match(item, word, start)
        return result
    if isinstance(content, Star):
        result = {start}
        frontier = {start}
        while frontier:
            fresh = set()
            for middle in frontier:
                for after in reference_match(content.item, word, middle):
                    if after not in result:
                        fresh.add(after)
            result |= fresh
            frontier = fresh
        return result
    if isinstance(content, Plus):
        # e+ == e, e*
        return reference_match(Seq([content.item, Star(content.item)]), word, start)
    if isinstance(content, Opt):
        return {start} | reference_match(content.item, word, start)
    raise TypeError(content)


def derivative_match(content: ContentModel, word) -> bool:
    current = content
    for symbol in word:
        current = current.derivative(symbol)
    return current.nullable()


@settings(max_examples=200, deadline=None)
@given(
    content_model_strategy(names=ALPHABET),
    st.lists(st.sampled_from(ALPHABET), max_size=6),
)
def test_derivatives_agree_with_reference(content, word):
    expected = len(word) in reference_match(content, tuple(word))
    assert derivative_match(content, word) == expected


@settings(max_examples=150, deadline=None)
@given(content_model_strategy(names=ALPHABET))
def test_nullable_means_empty_word(content):
    assert content.nullable() == (0 in reference_match(content, ()))


@settings(max_examples=150, deadline=None)
@given(
    content_model_strategy(names=ALPHABET),
    st.sampled_from(ALPHABET),
)
def test_first_symbols_complete(content, symbol):
    """A symbol outside first_symbols can never begin a word."""
    if symbol not in content.first_symbols():
        derived = content.derivative(symbol)
        assert not derived.nullable() and not derived.first_symbols()


@settings(max_examples=100, deadline=None)
@given(content_model_strategy(names=ALPHABET))
def test_normalization_preserves_leaf_types(content):
    from repro.dtd.dtd import DTD
    from repro.dtd.content import STR
    from repro.dtd.normalize import normalize_dtd

    productions = {"root": content}
    for name in ALPHABET:
        productions[name] = STR
    dtd = DTD("root", productions)
    normalized, _ = normalize_dtd(dtd)
    assert normalized.is_normal_form()
    assert normalized.root == "root"
    # every original type survives
    assert set(dtd.productions) <= set(normalized.productions)
