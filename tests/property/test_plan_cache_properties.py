"""Property: the plan-cache serving path is answer-preserving.

For random DAG DTDs, random Y/N policies, random conforming documents,
and random fragment-``C`` queries, executing through the compiled-plan
cache (cold and warm, with and without the document index) returns
exactly the node set of the uncached interpreter pipeline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.dtd.generator import DocumentGenerator
from repro.xmlmodel.serialize import serialize

from tests.property.strategies import (
    annotation_strategy,
    dag_dtd_strategy,
    path_strategy,
)

UNCACHED = ExecutionOptions(use_cache=False)
CACHED = ExecutionOptions(use_cache=True)
CACHED_INDEXED = ExecutionOptions(use_cache=True, use_index=True)
UNCACHED_RAW = ExecutionOptions(use_cache=False, project=False)
CACHED_RAW = ExecutionOptions(use_cache=True, project=False)
CACHED_RAW_INDEXED = ExecutionOptions(
    use_cache=True, project=False, use_index=True
)


def _rendered(values):
    return sorted(
        value if isinstance(value, str) else serialize(value)
        for value in values
    )


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_cached_execution_is_answer_preserving(data):
    dtd = data.draw(dag_dtd_strategy())
    spec = data.draw(annotation_strategy(dtd))
    seed = data.draw(st.integers(0, 500))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    query = data.draw(
        path_strategy(labels=tuple(dtd.element_types), max_leaves=5)
    )
    engine = SecureQueryEngine(dtd)
    engine.register_policy("p", spec)

    expected = _rendered(engine.query("p", query, document, UNCACHED))
    cold = engine.query("p", query, document, CACHED)
    assert not cold.report.cache_hit
    assert _rendered(cold) == expected
    warm = engine.query("p", query, document, CACHED)
    assert warm.report.cache_hit
    assert _rendered(warm) == expected
    # flipping the index on is a different execution shape — the
    # hardened cache key compiles it fresh (no cross-shape serving),
    # and the answers are unchanged either way
    indexed = engine.query("p", query, document, CACHED_INDEXED)
    assert not indexed.report.cache_hit
    assert _rendered(indexed) == expected
    assert engine.query("p", query, document, CACHED_INDEXED).report.cache_hit

    # raw (unprojected) answers must agree node-for-node by identity
    raw_expected = [
        id(node)
        for node in engine.query("p", query, document, UNCACHED_RAW)
    ]
    raw_cached = [
        id(node) for node in engine.query("p", query, document, CACHED_RAW)
    ]
    raw_indexed = [
        id(node)
        for node in engine.query("p", query, document, CACHED_RAW_INDEXED)
    ]
    assert raw_cached == raw_expected
    assert raw_indexed == raw_expected


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_cached_visits_match_uncached_interpreter(data):
    """The compiled plan does exactly the interpreter's work: on the
    unprojected path the machine-independent ``visits`` counter agrees
    between the cached (plan) and uncached (interpreter) pipelines."""
    dtd = data.draw(dag_dtd_strategy())
    spec = data.draw(annotation_strategy(dtd))
    seed = data.draw(st.integers(0, 200))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    query = data.draw(
        path_strategy(labels=tuple(dtd.element_types), max_leaves=4)
    )
    engine = SecureQueryEngine(dtd)
    engine.register_policy("p", spec)
    uncached = engine.query("p", query, document, UNCACHED_RAW)
    cached = engine.query("p", query, document, CACHED_RAW)
    assert cached.report.visits == uncached.report.visits
