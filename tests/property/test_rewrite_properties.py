"""More property-based rewriting checks: the Adex view and the
recursive catalog view under random queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.derive import derive
from repro.core.engine import SecureQueryEngine
from repro.core.materialize import materialize
from repro.core.rewrite import Rewriter
from repro.core.spec import AccessSpec
from repro.core.unfold import unfold_view
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.workloads.adex import adex_document, adex_dtd, adex_spec
from repro.xmlmodel.serialize import serialize
from repro.xpath.evaluator import XPathEvaluator

from tests.property.strategies import path_strategy

ADEX_LABELS = (
    "buyer-info",
    "company-id",
    "contact-info",
    "real-estate",
    "house",
    "apartment",
    "r-e.warranty",
    "r-e.asking-price",
    "phone",
    "dummy1",
)

_ADEX_DTD = adex_dtd()
_ADEX_SPEC = adex_spec(_ADEX_DTD)
_ADEX_VIEW = derive(_ADEX_SPEC)
_ADEX_DOC = adex_document(seed=6, buyers=6, ads=18)
_ADEX_TREE = materialize(_ADEX_DOC, _ADEX_VIEW, _ADEX_SPEC)
_ADEX_ENGINE = SecureQueryEngine(_ADEX_DTD)
_ADEX_ENGINE.register_policy("p", _ADEX_SPEC)


@settings(max_examples=60, deadline=None)
@given(path_strategy(labels=ADEX_LABELS, max_leaves=5))
def test_adex_rewrite_equivalence(query):
    evaluator = XPathEvaluator()
    expected = sorted(
        serialize(node) if node.is_element else node.value
        for node in evaluator.evaluate(query, _ADEX_TREE)
    )
    actual = sorted(
        value if isinstance(value, str) else serialize(value)
        for value in _ADEX_ENGINE.query("p", query, _ADEX_DOC)
    )
    assert expected == actual


_REC_DTD = parse_dtd(
    """
    <!ELEMENT r (a)>
    <!ELEMENT a (b | c)>
    <!ELEMENT c (a)>
    <!ELEMENT b (#PCDATA)>
    """
)
_REC_SPEC = AccessSpec(_REC_DTD, name="rec")
_REC_SPEC.annotate("r", "a", "N")
_REC_SPEC.annotate("a", "b", "Y")
_REC_VIEW = derive(_REC_SPEC)


@settings(max_examples=50, deadline=None)
@given(
    path_strategy(
        labels=("b", "dummy1", "dummy2"), max_leaves=4, allow_negation=False
    ),
    st.integers(0, 30),
)
def test_recursive_rewrite_equivalence(query, seed):
    document = DocumentGenerator(_REC_DTD, seed=seed, max_depth=10).generate()
    view_tree = materialize(document, _REC_VIEW, _REC_SPEC)
    rewriter = Rewriter(unfold_view(_REC_VIEW, document.height()))
    evaluator = XPathEvaluator()
    expected = sorted(
        serialize(node) if node.is_element else node.value
        for node in evaluator.evaluate(query, view_tree)
    )
    rewritten = rewriter.rewrite(query)
    # compare label+value only: recursive dummy results correspond to
    # hidden document nodes, which projection relabels; equivalence is
    # checked label-wise through projected engine queries elsewhere
    actual_nodes = evaluator.evaluate(rewritten, document)
    assert len(actual_nodes) == len(expected) or _projected_match(
        document, rewritten, view_tree, query, evaluator
    )


def _projected_match(document, rewritten, view_tree, query, evaluator):
    engine = SecureQueryEngine(_REC_DTD)
    engine.register_policy("p", _REC_SPEC)
    expected = sorted(
        serialize(node) if node.is_element else node.value
        for node in evaluator.evaluate(query, view_tree)
    )
    actual = sorted(
        value if isinstance(value, str) else serialize(value)
        for value in engine.query("p", query, document)
    )
    return expected == actual
