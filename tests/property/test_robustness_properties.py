"""Properties of the resource governor and input hardening.

The headline property: for random documents and random (often
pathological) fragment-``C`` queries, a *governed* query always
terminates promptly — it either answers or raises a typed
:class:`~repro.errors.ReproError` — and never hangs or escapes with an
untyped exception.  Supporting properties pin the governor's checkpoint
priority order, the deterministic fault triggers, and the parser depth
limits against generated inputs.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.options import ExecutionOptions
from repro.errors import (
    BudgetExceeded,
    ReproError,
    XMLLimitError,
)
from repro.robustness import Budget, FaultSpec, QueryLimits
from repro.workloads.hospital import hospital_document, nurse_engine
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serialize import serialize

from tests.property.strategies import path_strategy

#: The nurse view's label pool plus document-only and unknown labels,
#: so generated queries include denied and nonsensical steps too.
HOSPITAL_LABELS = (
    "hospital", "dept", "patient", "patientInfo", "name", "wardNo",
    "treatment", "dummy1", "dummy2", "bill", "medication", "trial",
    "clinicalTrial", "nosuchlabel",
)

ENGINE = nurse_engine()
DOCUMENTS = [hospital_document(seed=seed, max_branch=4) for seed in (0, 7)]

GOVERNED = QueryLimits(
    deadline_seconds=2.0,
    max_results=50_000,
    max_visits=500_000,
    max_frontier_rows=500_000,
)

#: Generous wall-clock ceiling: a governed query that takes longer than
#: this has escaped cooperative cancellation (i.e. would hang).
CEILING_SECONDS = 20.0


class TestGovernedQueriesTerminate:
    @settings(max_examples=40, deadline=None)
    @given(
        path=path_strategy(labels=HOSPITAL_LABELS, max_leaves=10),
        doc_index=st.integers(min_value=0, max_value=len(DOCUMENTS) - 1),
        strategy=st.sampled_from(["virtual", "columnar"]),
    )
    def test_answers_or_raises_typed_error_promptly(
        self, path, doc_index, strategy
    ):
        options = ExecutionOptions(strategy=strategy, limits=GOVERNED)
        started = time.perf_counter()
        try:
            result = ENGINE.query(
                "nurse", path, DOCUMENTS[doc_index], options=options
            )
        except ReproError as error:
            assert isinstance(error.code, str) and error.code.startswith("E_")
        else:
            assert isinstance(result.results, list)
        assert time.perf_counter() - started < CEILING_SECONDS

    @settings(max_examples=15, deadline=None)
    @given(path=path_strategy(labels=HOSPITAL_LABELS, max_leaves=8))
    def test_governed_answer_equals_ungoverned_answer(self, path):
        document = DOCUMENTS[0]
        try:
            baseline = ENGINE.query("nurse", path, document)
        except ReproError as error:
            baseline = error.code
        try:
            governed = ENGINE.query(
                "nurse",
                path,
                document,
                options=ExecutionOptions(limits=GOVERNED),
            )
        except ReproError as error:
            governed = error.code
        if isinstance(baseline, str) or isinstance(governed, str):
            assert baseline == governed
        else:
            assert [str(r) for r in governed.results] == [
                str(r) for r in baseline.results
            ]


class TestCheckpointProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        max_visits=st.one_of(st.none(), st.integers(1, 100)),
        max_frontier=st.one_of(st.none(), st.integers(1, 100)),
        visits=st.integers(0, 200),
        frontier=st.integers(0, 200),
    )
    def test_checkpoint_raises_iff_a_bound_is_exceeded(
        self, max_visits, max_frontier, visits, frontier
    ):
        budget = Budget(
            QueryLimits(max_visits=max_visits, max_frontier_rows=max_frontier),
            clock=lambda: 0.0,
        )
        frontier_hit = max_frontier is not None and frontier > max_frontier
        visits_hit = max_visits is not None and visits > max_visits
        if not (frontier_hit or visits_hit):
            budget.checkpoint(visits=visits, frontier=frontier)
            return
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.checkpoint(visits=visits, frontier=frontier)
        # priority order: frontier outranks visits
        expected = "frontier" if frontier_hit else "visits"
        assert excinfo.value.dimension == expected

    @settings(max_examples=50, deadline=None)
    @given(
        results=st.integers(0, 1000),
        bound=st.integers(1, 1000),
    )
    def test_charge_results_threshold(self, results, bound):
        budget = Budget(QueryLimits(max_results=bound), clock=lambda: 0.0)
        if results <= bound:
            budget.charge_results(results)
        else:
            with pytest.raises(BudgetExceeded):
                budget.charge_results(results)


class TestFaultTriggerProperties:
    @settings(max_examples=50, deadline=None)
    @given(every=st.integers(1, 20), calls=st.integers(0, 200))
    def test_every_n_fires_floor_calls_over_n(self, every, calls):
        spec = FaultSpec("x", every=every)
        fired = sum(spec.triggered(i) for i in range(1, calls + 1))
        assert fired == calls // every

    @settings(max_examples=50, deadline=None)
    @given(at=st.integers(1, 50), calls=st.integers(0, 100))
    def test_at_n_fires_at_most_once(self, at, calls):
        spec = FaultSpec("x", at=at)
        fired = sum(spec.triggered(i) for i in range(1, calls + 1))
        assert fired == (1 if calls >= at else 0)


class TestParserLimitProperties:
    @settings(max_examples=40, deadline=None)
    @given(depth=st.integers(1, 400), limit=st.integers(1, 400))
    def test_depth_limit_is_exact(self, depth, limit):
        text = "<d>" * depth + "x" + "</d>" * depth
        if depth <= limit:
            root = parse_document(text, max_depth=limit)
            assert serialize(root) == text
        else:
            with pytest.raises(XMLLimitError):
                parse_document(text, max_depth=limit)

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(1, 500), limit=st.integers(1, 500))
    def test_width_never_trips_the_depth_limit(self, width, limit):
        text = "<r>" + "<c/>" * width + "</r>"
        root = parse_document(text, max_depth=max(limit, 2))
        assert len(root.children) == width
