"""Property-based round-trip tests for the XML and DTD serializers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.parser import parse_dtd
from repro.xmlmodel.nodes import XMLElement
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serialize import pretty_print, serialize

from tests.property.strategies import dag_dtd_strategy

_LABELS = ("a", "b", "c-d", "e.f", "_g")
#: Text including every character the escapers must handle.
_TEXT = st.text(
    alphabet=st.sampled_from(list("ab<>&\"' \t\n7é")), max_size=12
)
_ATTR_NAMES = ("x", "y", "long-name")


@st.composite
def xml_tree_strategy(draw, max_depth=4):
    label = draw(st.sampled_from(_LABELS))
    element = XMLElement(label)
    for name in _ATTR_NAMES:
        if draw(st.booleans()):
            element.set(name, draw(_TEXT))
    if max_depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                child_text = draw(_TEXT)
                # adjacent text nodes merge on reparse, and
                # whitespace-only text is dropped by default: normalize
                if child_text.strip() and not (
                    element.children and element.children[-1].is_text
                ):
                    element.add_text(child_text)
            else:
                element.append(
                    draw(xml_tree_strategy(max_depth=max_depth - 1))
                )
    return element


@settings(max_examples=150, deadline=None)
@given(xml_tree_strategy())
def test_serialize_parse_roundtrip(tree):
    assert parse_document(serialize(tree)).structurally_equal(tree)


@settings(max_examples=100, deadline=None)
@given(xml_tree_strategy())
def test_serialize_is_deterministic(tree):
    assert serialize(tree) == serialize(tree)


@settings(max_examples=80, deadline=None)
@given(xml_tree_strategy())
def test_pretty_print_preserves_element_structure(tree):
    # pretty printing may re-indent text, so compare element skeletons
    reparsed = parse_document(pretty_print(tree))

    def skeleton(node):
        return (
            node.label,
            tuple(sorted(node.attributes.items())),
            tuple(
                skeleton(child)
                for child in node.children
                if child.is_element
            ),
        )

    assert skeleton(reparsed) == skeleton(tree)


@settings(max_examples=80, deadline=None)
@given(dag_dtd_strategy())
def test_dtd_text_roundtrip(dtd):
    assert parse_dtd(dtd.to_dtd_text()) == dtd


@settings(max_examples=60, deadline=None)
@given(dag_dtd_strategy(), st.integers(0, 100))
def test_generated_document_serialization_roundtrip(dtd, seed):
    from repro.dtd.generator import DocumentGenerator

    document = DocumentGenerator(dtd, seed=seed).generate()
    assert parse_document(serialize(document)).structurally_equal(document)
