"""Property-based tests of the serving layer.

The load-bearing invariant: batched execution is *pure optimization* —
``engine.query_batch(qs)`` answers exactly like ``[engine.query(q) for
q in qs]`` for random query batches, across every execution strategy
(the shared scan cache must never change an answer).  Plus protocol
round-trip totality for randomly composed requests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.serving.protocol import QueryRequest
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)
from repro.xmlmodel.serialize import serialize

from tests.property.strategies import path_strategy

HOSPITAL_LABELS = (
    "dept",
    "patientInfo",
    "patient",
    "name",
    "wardNo",
    "treatment",
    "dummy1",
    "dummy2",
    "bill",
    "medication",
    "staffInfo",
    "staff",
)

_DOCUMENTS = {}


def _document(seed):
    if seed not in _DOCUMENTS:
        _DOCUMENTS[seed] = hospital_document(seed=seed, max_branch=3)
    return _DOCUMENTS[seed]


def _engine():
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return engine


def _canonical(values):
    return [
        value if isinstance(value, str) else serialize(value)
        for value in values
    ]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        path_strategy(labels=HOSPITAL_LABELS, max_leaves=5),
        min_size=1,
        max_size=6,
    ),
    st.sampled_from([0, 7, 13]),
    st.sampled_from(["virtual", "columnar"]),
)
def test_query_batch_parity(queries, seed, strategy):
    """query_batch == [query(q) for q in batch], any strategy, any
    random batch (including batches with repeated queries)."""
    engine = _engine()
    document = _document(seed)
    options = ExecutionOptions(strategy=strategy)
    individually = [
        _canonical(engine.query("nurse", q, document, options=options))
        for q in queries
    ]
    # a fresh engine, so the batch path also covers cold caches
    batch_engine = _engine()
    batched = batch_engine.query_batch(
        "nurse", queries, document, options=options
    )
    assert [_canonical(result) for result in batched] == individually


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        path_strategy(labels=HOSPITAL_LABELS, max_leaves=5),
        min_size=2,
        max_size=5,
    ),
    st.sampled_from([7, 21]),
)
def test_execute_batch_matches_individual_requests(queries, seed):
    """The request-level batch API (the server's path, shared scan
    cache included) agrees with one-at-a-time execute_request."""
    engine = _engine()
    document = _document(seed)
    columnar = ExecutionOptions(strategy="columnar")
    requests = [
        QueryRequest(
            policy="nurse", query=q, options=columnar, request_id=str(i)
        )
        for i, q in enumerate(queries)
    ]
    lone_engine = _engine()
    individually = [
        lone_engine.execute_request(request, document) for request in requests
    ]
    batched = engine.execute_batch(requests, document)
    assert [r.results for r in batched] == [r.results for r in individually]
    assert [r.ok for r in batched] == [r.ok for r in individually]


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(HOSPITAL_LABELS),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("L", "N"), max_codepoint=0x7F
        ),
        max_size=12,
    ),
    st.booleans(),
    st.sampled_from(["virtual", "columnar", "materialized"]),
)
def test_request_round_trip_total(label, tenant, use_index, strategy):
    """to_dict/from_dict is the identity for any representable request."""
    request = QueryRequest(
        policy="nurse",
        query="//%s" % label,
        document="hospital",
        tenant=tenant,
        options=ExecutionOptions(strategy=strategy, use_index=use_index),
        request_id=tenant[::-1],
    )
    assert QueryRequest.from_dict(request.to_dict()) == request
