"""Property-based tests of the end-to-end system invariants:

* generated documents always conform to their DTD;
* accessibility labeling matches an independent reference
  implementation of the Section 3.2 semantics;
* for random Y/N specifications over random DAG DTDs, the derived view
  is *sound and complete*: the materialized view carries exactly the
  accessible elements (Theorem 3.2);
* query rewriting is equivalent to querying the materialized view
  (Theorem 4.1), and optimization preserves answers.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accessibility import compute_accessibility
from repro.core.derive import derive
from repro.core.engine import SecureQueryEngine
from repro.core.materialize import materialize
from repro.core.options import ExecutionOptions
from repro.core.optimize import Optimizer
from repro.core.spec import ANN_N, ANN_Y
from repro.dtd.generator import DocumentGenerator
from repro.dtd.validate import conforms
from repro.workloads.hospital import hospital_document, hospital_dtd, nurse_spec
from repro.xmlmodel.serialize import serialize
from repro.xpath.evaluator import XPathEvaluator

from tests.property.strategies import (
    annotation_strategy,
    dag_dtd_strategy,
    path_strategy,
)


@settings(max_examples=60, deadline=None)
@given(dag_dtd_strategy(), st.integers(0, 10_000))
def test_generator_conformance(dtd, seed):
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    assert conforms(document, dtd)


def reference_accessibility(element, spec, parent_accessible, conditions_ok, out):
    """Literal transcription of the Section 3.2 definition, independent
    of the production implementation."""
    from repro.core.spec import CondAnnotation
    from repro.xpath.evaluator import evaluate_qualifier

    for child in element.children:
        if not child.is_element:
            continue
        annotation = spec.ann(element.label, child.label)
        child_conditions = conditions_ok
        if annotation is ANN_Y:
            accessible = conditions_ok
        elif annotation is ANN_N:
            accessible = False
        elif isinstance(annotation, CondAnnotation):
            holds = evaluate_qualifier(annotation.qualifier, child)
            child_conditions = conditions_ok and holds
            accessible = child_conditions
        else:
            accessible = parent_accessible
        out[id(child)] = accessible
        reference_accessibility(child, spec, accessible, child_conditions, out)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_accessibility_matches_reference(data):
    dtd = data.draw(dag_dtd_strategy())
    spec = data.draw(annotation_strategy(dtd))
    seed = data.draw(st.integers(0, 1000))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    expected = {id(document): True}
    reference_accessibility(document, spec, True, True, expected)
    assert compute_accessibility(document, spec) == expected


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_view_soundness_and_completeness(data):
    """Theorem 3.2 for Y/N specs: the materialized view holds all and
    only the accessible elements (compared per label as multisets;
    dummies are structural and excluded)."""
    dtd = data.draw(dag_dtd_strategy())
    spec = data.draw(annotation_strategy(dtd))
    seed = data.draw(st.integers(0, 1000))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    view = derive(spec)
    view_tree = materialize(document, view, spec)
    flags = compute_accessibility(document, spec)
    accessible = Counter(
        node.label
        for node in document.iter_elements()
        if flags[id(node)]
    )
    view_labels = Counter(
        node.label
        for node in view_tree.iter_elements()
        if not _is_dummy(view, node.label)
    )
    assert view_labels == accessible


def _is_dummy(view, label):
    for node in view.nodes.values():
        if node.label == label:
            return node.is_dummy
    return False


@settings(max_examples=50, deadline=None)
@given(
    path_strategy(
        labels=(
            "dept",
            "patientInfo",
            "patient",
            "name",
            "wardNo",
            "treatment",
            "dummy1",
            "dummy2",
            "bill",
            "medication",
            "staffInfo",
            "staff",
        ),
        max_leaves=6,
    ),
    st.sampled_from([0, 7, 13]),
)
def test_rewrite_equivalence_random_queries(query, seed):
    """Random view queries answer identically over the materialized
    view and via rewriting (+ optimization) over the document."""
    dtd = hospital_dtd()
    spec = nurse_spec(dtd).bind(wardNo="2")
    view = derive(spec)
    document = hospital_document(seed=seed, max_branch=3)
    view_tree = materialize(document, view, spec)
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", spec)
    evaluator = XPathEvaluator()
    expected = sorted(
        serialize(node) if node.is_element else node.value
        for node in evaluator.evaluate(query, view_tree)
    )
    for optimize in (False, True):
        actual = sorted(
            value if isinstance(value, str) else serialize(value)
            for value in engine.query(
                "nurse",
                query,
                document,
                options=ExecutionOptions(optimize=optimize),
            )
        )
        assert expected == actual


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_no_label_leakage_random_policies_and_queries(data):
    """The universal security property: whatever the policy and the
    query (including probes for hidden labels), projected results only
    ever contain view labels."""
    dtd = data.draw(dag_dtd_strategy())
    spec = data.draw(annotation_strategy(dtd))
    seed = data.draw(st.integers(0, 500))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    query = data.draw(
        path_strategy(labels=tuple(dtd.element_types), max_leaves=5)
    )
    engine = SecureQueryEngine(dtd)
    engine.register_policy("p", spec)
    view = engine._policies["p"].view
    allowed = view.labels()
    for result in engine.query("p", query, document):
        if isinstance(result, str):
            continue
        labels_seen = {element.label for element in result.iter_elements()}
        assert labels_seen <= allowed


@settings(max_examples=60, deadline=None)
@given(
    path_strategy(
        labels=(
            "dept",
            "clinicalTrial",
            "patientInfo",
            "patient",
            "treatment",
            "trial",
            "regular",
            "bill",
            "staffInfo",
        ),
        max_leaves=6,
    ),
    st.sampled_from([3, 11]),
)
def test_optimize_equivalence_random_queries(query, seed):
    """optimize() preserves the answer of arbitrary document queries."""
    dtd = hospital_dtd()
    optimizer = Optimizer(dtd)
    document = hospital_document(seed=seed, max_branch=3)
    evaluator = XPathEvaluator()
    optimized = optimizer.optimize(query)
    expected = sorted(id(n) for n in evaluator.evaluate(query, document))
    actual = sorted(id(n) for n in evaluator.evaluate(optimized, document))
    assert expected == actual


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_indexed_evaluation_equivalent(data):
    """The indexed fast path never changes an answer."""
    from repro.xmlmodel.index import build_index

    dtd = data.draw(dag_dtd_strategy())
    seed = data.draw(st.integers(0, 300))
    document = DocumentGenerator(dtd, seed=seed, max_branch=3).generate()
    query = data.draw(
        path_strategy(labels=tuple(dtd.element_types), max_leaves=5)
    )
    index = build_index(document)
    plain = XPathEvaluator()
    fast = XPathEvaluator(index=index)
    expected = [
        id(node) for node in plain.evaluate(query, document, ordered=True)
    ]
    actual = [
        id(node) for node in fast.evaluate(query, document, ordered=True)
    ]
    assert expected == actual
