"""Property-based tests for the XPath substrate."""

from hypothesis import given, settings

from repro.xpath.parser import parse_xpath
from repro.xpath.subqueries import ascending_subqueries

from tests.property.strategies import path_strategy


@settings(max_examples=150, deadline=None)
@given(path_strategy())
def test_serialization_roundtrip(query):
    """str -> parse is the identity on ASTs (up to smart-constructor
    normalization, which the generators already apply)."""
    assert parse_xpath(str(query)) == query


@settings(max_examples=100, deadline=None)
@given(path_strategy())
def test_double_roundtrip_stable(query):
    once = parse_xpath(str(query))
    assert parse_xpath(str(once)) == once


@settings(max_examples=100, deadline=None)
@given(path_strategy())
def test_structural_equality_consistent_with_hash(query):
    clone = parse_xpath(str(query))
    assert hash(clone) == hash(query)


@settings(max_examples=100, deadline=None)
@given(path_strategy())
def test_subqueries_respect_topology(query):
    ordered = ascending_subqueries(query)
    assert ordered[-1] == query
    positions = {node: i for i, node in enumerate(ordered)}
    for node in ordered:
        for child in node.children():
            assert positions[child] < positions[node]


@settings(max_examples=100, deadline=None)
@given(path_strategy())
def test_size_positive_and_additive(query):
    assert query.size() >= 1
    assert query.size() >= len(ascending_subqueries(query))
