"""Unit tests for the benchmark drivers."""

import pytest

from repro.benchtools.scaling import (
    alternating_spec,
    chain_dtd,
    chain_sizes,
    deep_query,
    descendant_query,
    diamond_dtd,
    full_access_spec,
    qualifier_query,
    star_tree_dtd,
    union_query,
    wide_dtd,
)
from repro.benchtools.table1 import Cell, format_table, run_table1
from repro.core.derive import derive
from repro.core.rewrite import Rewriter
from repro.dtd.validate import conforms


class TestScalingFamilies:
    @pytest.mark.parametrize("size", [1, 4, 9])
    def test_chain_dtd(self, size):
        dtd = chain_dtd(size)
        assert dtd.is_normal_form()
        assert dtd.is_consistent()
        assert len(dtd.element_types) == size + 1

    @pytest.mark.parametrize("width", [1, 5])
    def test_wide_dtd(self, width):
        dtd = wide_dtd(width)
        assert dtd.is_normal_form()
        assert len(dtd.children_of("r")) == width

    @pytest.mark.parametrize("layers", [1, 3, 6])
    def test_diamond_dtd(self, layers):
        dtd = diamond_dtd(layers)
        assert dtd.is_normal_form()
        assert dtd.is_consistent()
        assert not dtd.is_recursive()
        # 2^layers root-to-leaf label paths
        rewriter = Rewriter(derive(full_access_spec(dtd)))
        from repro.xpath.ast import Descendant, Label

        rewritten = rewriter.rewrite(Descendant(Label("d%d" % layers)))
        assert not rewritten.is_empty

    def test_star_tree(self):
        dtd = star_tree_dtd(3, fanout=2)
        assert dtd.is_normal_form()
        assert len(dtd.element_types) == 2 ** 4 - 1

    def test_alternating_spec_derives(self):
        size = 9
        view = derive(alternating_spec(chain_dtd(size), size))
        exposed = view.exposed_dtd().to_dtd_text()
        assert "a1 " not in exposed  # odd nodes hidden

    def test_query_families(self):
        assert deep_query(4).size() >= 4
        assert descendant_query(3).size() >= 3
        assert len(union_query(5).branches) == 5
        assert qualifier_query(3).size() > 3
        assert chain_sizes(3, start=4) == [4, 8, 16]


class TestTable1Driver:
    def test_run_and_format(self):
        rows = run_table1(
            datasets=["D1"], queries=["Q1", "Q4"], scale=0.05, repeat=1
        )
        assert set(rows) == {"Q1", "Q4"}
        row = rows["Q1"]["D1"]
        assert row["naive"].seconds > 0
        assert row["rewrite"].seconds >= 0
        assert row["optimize"].skipped  # Q1 has no further optimization
        assert rows["Q4"]["D1"]["optimize"].results == 0
        text = format_table(rows, scale=0.05)
        assert "Q1" in text and "Naive" in text and "-" in text

    def test_naive_visits_dominate(self):
        rows = run_table1(datasets=["D1"], queries=["Q2"], scale=0.1)
        row = rows["Q2"]["D1"]
        assert row["naive"].visits > row["rewrite"].visits

    def test_cell_render(self):
        assert Cell(0.5, 10, 3).render() == "0.5000"
        assert Cell(0.0, 0, 0, skipped=True).render() == "-"

    def test_main_entrypoint(self, capsys):
        from repro.benchtools.table1 import main

        assert main(["--scale", "0.05", "--datasets", "D1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "Q4" in output


class TestGeneratedFamiliesConform:
    def test_chain_instances(self):
        from repro.dtd.generator import DocumentGenerator

        dtd = chain_dtd(6)
        tree = DocumentGenerator(dtd, seed=0).generate()
        assert conforms(tree, dtd)

    def test_diamond_instances(self):
        from repro.dtd.generator import DocumentGenerator

        dtd = diamond_dtd(4)
        tree = DocumentGenerator(dtd, seed=1).generate()
        assert conforms(tree, dtd)
