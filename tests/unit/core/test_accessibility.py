"""Unit tests for document-node accessibility (Prop. 3.1 semantics)."""

import pytest

from repro.core.accessibility import (
    ACCESSIBILITY_ATTRIBUTE,
    accessible_nodes,
    annotate_accessibility,
    compute_accessibility,
    is_accessible,
    strip_accessibility,
)
from repro.core.spec import AccessSpec
from repro.workloads.hospital import hospital_dtd
from repro.xmlmodel.parser import parse_document

DOC = """
<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>tom</name><wardNo>2</wardNo>
          <treatment><trial><bill>100</bill></trial></treatment>
        </patient>
      </patientInfo>
    </clinicalTrial>
    <patientInfo>
      <patient><name>ann</name><wardNo>2</wardNo>
        <treatment><regular><bill>70</bill><medication>iron</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse>nina</nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo/></clinicalTrial>
    <patientInfo>
      <patient><name>bob</name><wardNo>9</wardNo>
        <treatment><trial><bill>10</bill></trial></treatment>
      </patient>
    </patientInfo>
    <staffInfo/>
  </dept>
</hospital>
"""


@pytest.fixture()
def document():
    return parse_document(DOC)


@pytest.fixture()
def dtd():
    return hospital_dtd()


def nurse(dtd, ward="2"):
    from repro.workloads.hospital import nurse_spec

    return nurse_spec(dtd).bind(wardNo=ward)


def labels_of_accessible(document, spec):
    return sorted(
        node.label for node in accessible_nodes(document, spec)
    )


class TestSemantics:
    def test_root_always_accessible(self, document, dtd):
        spec = AccessSpec(dtd)
        assert is_accessible(document, document, spec)

    def test_inheritance_default_all_accessible(self, document, dtd):
        spec = AccessSpec(dtd)
        accessibility = compute_accessibility(document, spec)
        assert all(accessibility.values())

    def test_n_annotation_blocks_subtree_by_inheritance(self, document, dtd):
        spec = AccessSpec(dtd).annotate("dept", "clinicalTrial", "N")
        accessible = labels_of_accessible(document, spec)
        assert "clinicalTrial" not in accessible
        # patients under clinicalTrial inherit inaccessibility
        trial_patient = document.find_all("clinicalTrial")[0].find_all("patient")
        flags = compute_accessibility(document, spec)
        assert all(not flags[id(node)] for node in trial_patient)

    def test_override_y_below_n(self, document, dtd):
        spec = AccessSpec(dtd)
        spec.annotate("dept", "clinicalTrial", "N")
        spec.annotate("clinicalTrial", "patientInfo", "Y")
        flags = compute_accessibility(document, spec)
        hidden = document.find_all("clinicalTrial")[0]
        revealed = hidden.find_all("patientInfo")[0]
        assert not flags[id(hidden)]
        assert flags[id(revealed)]

    def test_conditional_annotation(self, document, dtd):
        spec = nurse(dtd, ward="2")
        flags = compute_accessibility(document, spec)
        ward2_dept, ward9_dept = document.find_all("dept")
        assert flags[id(ward2_dept)]
        assert not flags[id(ward9_dept)]

    def test_failed_condition_blocks_descendant_y(self, document, dtd):
        # bill under the ward-9 dept is annotated Y, but the failing
        # dept qualifier must still block it (ancestor condition rule)
        spec = nurse(dtd, ward="2")
        flags = compute_accessibility(document, spec)
        ward9_dept = document.find_all("dept")[1]
        for bill in ward9_dept.find_all("bill"):
            assert not flags[id(bill)]

    def test_full_nurse_policy(self, document, dtd):
        spec = nurse(dtd, ward="2")
        accessible = labels_of_accessible(document, spec)
        assert "clinicalTrial" not in accessible
        assert "trial" not in accessible
        assert "regular" not in accessible
        assert accessible.count("bill") == 2  # tom's and ann's
        assert accessible.count("patient") == 2
        assert "medication" in accessible


class TestAnnotationAttribute:
    def test_annotate_document_counts(self, document, dtd):
        spec = nurse(dtd, ward="2")
        count = annotate_accessibility(document, spec)
        flags = compute_accessibility(document, spec)
        assert count == sum(1 for value in flags.values() if value)

    def test_annotate_document_attributes(self, document, dtd):
        spec = nurse(dtd, ward="2")
        annotate_accessibility(document, spec)
        hidden = document.find_all("clinicalTrial")[0]
        assert hidden.get(ACCESSIBILITY_ATTRIBUTE) == "0"
        assert document.get(ACCESSIBILITY_ATTRIBUTE) == "1"

    def test_strip(self, document, dtd):
        annotate_accessibility(document, nurse(dtd))
        strip_accessibility(document)
        assert all(
            ACCESSIBILITY_ATTRIBUTE not in node.attributes
            for node in document.iter_elements()
        )
