"""Corner-case coverage for public API surfaces exercised nowhere
else: explicit height bounds, absolute reach, the public qualifier
optimizer, and engine edge paths."""

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.core.unfold import unfold_view
from repro.workloads.hospital import hospital_dtd, nurse_spec
from repro.xpath.parser import parse_qualifier, parse_xpath


class TestRewriteQueryWithHeightBound:
    def test_int_height_instead_of_document(
        self, recursive_dtd, recursive_spec
    ):
        engine = SecureQueryEngine(recursive_dtd)
        engine.register_policy("rec", recursive_spec)
        rewritten = engine.rewrite_query("rec", "//b", document=6)
        assert not rewritten.is_empty
        # taller bound covers deeper occurrences: strictly more branches
        taller = engine.rewrite_query("rec", "//b", document=10)
        assert len(str(taller)) > len(str(rewritten))

    def test_unfold_idempotent_for_dag(self, nurse_view):
        assert unfold_view(nurse_view, 12) is nurse_view


class TestReach:
    def test_reach_absolute_query(self, nurse_view):
        rewriter = Rewriter(nurse_view)
        assert rewriter.reach(parse_xpath("/hospital/dept")) == ["dept"]
        reached = rewriter.reach(parse_xpath("//bill"))
        assert "bill" in reached

    def test_reach_with_context_override(self, nurse_view):
        rewriter = Rewriter(nurse_view)
        assert rewriter.reach(parse_xpath("patient"), "patientInfo") == [
            "patient"
        ]


class TestPublicQualifierOptimizer:
    def test_optimize_qualifier_direct(self):
        optimizer = Optimizer(hospital_dtd())
        folded = optimizer.optimize_qualifier(
            parse_qualifier("[name and wardNo]"), "patient"
        )
        assert str(folded) == "true()"
        kept = optimizer.optimize_qualifier(
            parse_qualifier("[treatment/trial]"), "patient"
        )
        assert str(kept) == "treatment/trial"

    def test_optimize_with_context_override(self):
        optimizer = Optimizer(hospital_dtd())
        result = optimizer.optimize(parse_xpath("patient/name"), context="patientInfo")
        assert str(result) == "patient/name"
        nothing = optimizer.optimize(parse_xpath("dept"), context="patientInfo")
        assert nothing.is_empty


class TestEngineCorners:
    def test_rewrite_query_without_document_for_dag_views(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        rewritten = engine.rewrite_query("nurse", "//patient")
        assert "dept" in str(rewritten)

    def test_register_policy_returns_view(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        view = engine.register_policy("nurse", nurse_spec(dtd), wardNo="1")
        assert view.root.label == "hospital"

    def test_preserve_choice_branches_flag_threaded(self):
        from repro.dtd.parser import parse_dtd
        from repro.core.spec import AccessSpec

        dtd = parse_dtd(
            "<!ELEMENT r (keep | gone)>"
            "<!ELEMENT keep (#PCDATA)><!ELEMENT gone (#PCDATA)>"
        )
        spec = AccessSpec(dtd).annotate("r", "gone", "N")
        engine = SecureQueryEngine(dtd)
        literal = engine.register_policy(
            "literal", spec, preserve_choice_branches=False
        )
        assert literal.warnings
        softened = engine.register_policy("soft", spec)
        assert not softened.warnings

    def test_query_with_empty_result_types(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        from repro.workloads.hospital import hospital_document

        document = hospital_document(seed=2, max_branch=2)
        assert engine.query("nurse", "0", document) == []
        assert engine.query("nurse", ".", document)[0].label == "hospital"


class TestViewDescribeAndRepr:
    def test_reprs_do_not_crash(self, nurse_view, nurse):
        assert "SecurityView" in repr(nurse_view)
        assert "AccessSpec" in repr(nurse)
        for node in nurse_view.nodes.values():
            assert "ViewNode" in repr(node)
