"""Unit tests for attribute-level access control (the paper's
"attributes can be easily incorporated" extension)."""

import pytest

from repro.core.derive import derive
from repro.core.engine import SecureQueryEngine
from repro.core.materialize import materialize
from repro.core.rewrite import Rewriter
from repro.core.spec import AccessSpec
from repro.dtd.parser import parse_dtd
from repro.errors import SpecificationError
from repro.xmlmodel.parser import parse_document
from repro.xpath.parser import parse_xpath

DTD_TEXT = """
<!ELEMENT clinic (record*)>
<!ELEMENT record (note)>
<!ATTLIST record mrn CDATA #REQUIRED insurer CDATA #IMPLIED ward CDATA #IMPLIED>
<!ELEMENT note (#PCDATA)>
"""

DOC_TEXT = """
<clinic>
  <record mrn="111" insurer="acme" ward="2"><note>flu</note></record>
  <record mrn="222" insurer="blue" ward="4"><note>cast</note></record>
</clinic>
"""


@pytest.fixture()
def dtd():
    return parse_dtd(DTD_TEXT)


@pytest.fixture()
def spec(dtd):
    built = AccessSpec(dtd, name="billing-hidden")
    built.annotate_attribute("record", "insurer", "N")
    return built


@pytest.fixture()
def document():
    return parse_document(DOC_TEXT)


class TestSpecSide:
    def test_hidden_attributes(self, spec):
        assert spec.hidden_attributes("record") == {"insurer"}
        assert spec.hidden_attributes("note") == frozenset()

    def test_conditional_attribute_annotation_rejected(self, dtd):
        with pytest.raises(SpecificationError):
            AccessSpec(dtd).annotate_attribute("record", "ward", '[note = "x"]')

    def test_undeclared_attribute_rejected(self, dtd):
        with pytest.raises(SpecificationError):
            AccessSpec(dtd).annotate_attribute("record", "rogue", "N")

    def test_lax_element_accepts_any_attribute_name(self, dtd):
        AccessSpec(dtd).annotate_attribute("note", "anything", "N")

    def test_bind_preserves_attribute_annotations(self, dtd):
        spec = AccessSpec(dtd)
        spec.annotate("clinic", "record", '[ward = $w]')
        spec.annotate_attribute("record", "insurer", "N")
        bound = spec.bind(w="2")
        assert bound.hidden_attributes("record") == {"insurer"}


class TestViewSide:
    def test_view_records_hidden_attributes(self, spec):
        view = derive(spec)
        assert view.hidden_attributes_of("record") == {"insurer"}

    def test_exposed_dtd_drops_hidden_attlist_entry(self, spec):
        view = derive(spec)
        exposed = view.exposed_dtd()
        declarations = exposed.attribute_decls("record")
        assert "insurer" not in declarations
        assert {"mrn", "ward"} <= set(declarations)

    def test_materialized_view_strips_hidden_attribute(self, spec, document):
        view = derive(spec)
        view_tree = materialize(document, view, spec)
        for record in view_tree.find_all("record"):
            assert "insurer" not in record.attributes
            assert record.get("mrn") is not None


class TestQuerySide:
    def test_qualifier_on_hidden_attribute_is_empty(self, spec):
        view = derive(spec)
        rewriter = Rewriter(view)
        result = rewriter.rewrite(parse_xpath("//record[@insurer]"))
        assert result.is_empty

    def test_equality_on_hidden_attribute_is_empty(self, spec):
        view = derive(spec)
        rewriter = Rewriter(view)
        result = rewriter.rewrite(parse_xpath('//record[@insurer = "acme"]'))
        assert result.is_empty

    def test_path_prefixed_attribute_test(self, spec, document, dtd):
        # [record/@insurer] from the clinic context: the prefix path is
        # rewritten and the hidden attribute still drops the qualifier
        view = derive(spec)
        rewriter = Rewriter(view)
        hidden = rewriter.rewrite(parse_xpath("clinic[record/@insurer]"))
        # (query posed at the view root selects nothing: 'clinic' is
        # the root itself, not a child; use a child-anchored form)
        probe = rewriter.rewrite(parse_xpath(".[record/@insurer]"))
        assert probe.is_empty
        visible = rewriter.rewrite(parse_xpath(".[record/@ward]"))
        assert not visible.is_empty
        del hidden

    def test_visible_attribute_still_queryable(self, spec, document, dtd):
        engine = SecureQueryEngine(dtd)
        engine.register_policy("p", spec)
        results = engine.query("p", '//record[@ward = "2"]/note', document)
        assert [element.string_value() for element in results] == ["flu"]

    def test_projected_results_never_carry_hidden_attribute(
        self, spec, document, dtd
    ):
        engine = SecureQueryEngine(dtd)
        engine.register_policy("p", spec)
        for result in engine.query("p", "//record", document):
            assert "insurer" not in result.attributes

    def test_engine_oracle_with_attributes(self, spec, document, dtd):
        from repro.xmlmodel.serialize import serialize
        from repro.xpath.evaluator import evaluate

        view = derive(spec)
        view_tree = materialize(document, view, spec)
        engine = SecureQueryEngine(dtd)
        engine.register_policy("p", spec)
        for text in ("//record", '//record[@mrn = "222"]', "record/note"):
            query = parse_xpath(text)
            expected = sorted(
                serialize(node) for node in evaluate(query, view_tree)
            )
            actual = sorted(
                serialize(node)
                for node in engine.query("p", query, document)
            )
            assert expected == actual, text
