"""Unit tests for DTD-constraint qualifier evaluation (Example 5.1:
co-existence, exclusive, non-existence constraints)."""

import pytest

from repro.core.constraints import (
    evaluate_qualifier_bool,
    exclusive_conflict,
    path_exists_bool,
    required_first_labels,
)
from repro.dtd.parser import parse_dtd
from repro.xpath.parser import parse_qualifier, parse_xpath

# Fig. 8's three shapes in one DTD
DTD_TEXT = """
<!ELEMENT r (coexist, exclusive, nonexist, stars)>
<!ELEMENT coexist (b, c)>
<!ELEMENT exclusive (b | c)>
<!ELEMENT nonexist (d)>
<!ELEMENT stars (b*)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
"""


@pytest.fixture(scope="module")
def dtd():
    return parse_dtd(DTD_TEXT)


def qualifier_bool(dtd, text, node):
    return evaluate_qualifier_bool(dtd, parse_qualifier(text), node)


class TestExample51:
    def test_coexistence_makes_conjunction_true(self, dtd):
        # //a[b and c] == //a when a -> (b, c)   (Fig. 8a)
        assert qualifier_bool(dtd, "[b and c]", "coexist") is True

    def test_exclusive_makes_conjunction_false(self, dtd):
        # //a[b and c] == 0 when a -> (b | c)    (Fig. 8b)
        assert qualifier_bool(dtd, "[b and c]", "exclusive") is False

    def test_nonexistence_prunes(self, dtd):
        # b cannot have a c child                 (Fig. 8c)
        assert qualifier_bool(dtd, "[c]", "nonexist") is False


class TestPathExistence:
    def test_required_child_true(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("b"), "coexist") is True

    def test_choice_child_unknown(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("b"), "exclusive") is None

    def test_star_child_unknown(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("b"), "stars") is None

    def test_absent_child_false(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("z"), "coexist") is False

    def test_wildcard_cases(self, dtd):
        # the paper's case (7)
        assert path_exists_bool(dtd, parse_xpath("*"), "coexist") is True
        assert path_exists_bool(dtd, parse_xpath("*"), "exclusive") is True
        assert path_exists_bool(dtd, parse_xpath("*"), "stars") is None
        assert path_exists_bool(dtd, parse_xpath("*"), "b") is False

    def test_epsilon_true(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("."), "b") is True

    def test_empty_false(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("0"), "r") is False

    def test_chain_through_required(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("coexist/b"), "r") is True
        assert path_exists_bool(dtd, parse_xpath("coexist/z"), "r") is False
        assert path_exists_bool(dtd, parse_xpath("stars/b"), "r") is None

    def test_union(self, dtd):
        assert path_exists_bool(dtd, parse_xpath("coexist | z"), "r") is True
        assert path_exists_bool(dtd, parse_xpath("z | zz"), "r") is False
        assert (
            path_exists_bool(dtd, parse_xpath("z | stars/b"), "r") is None
        )

    def test_descendant(self, dtd):
        from repro.xpath.ast import Descendant, Label

        assert path_exists_bool(dtd, Descendant(Label("b")), "r") is None
        assert path_exists_bool(dtd, Descendant(Label("z")), "r") is False
        assert (
            path_exists_bool(dtd, Descendant(Label("coexist")), "r") is True
        )

    def test_qualified(self, dtd):
        query = parse_xpath("coexist[b]")
        assert path_exists_bool(dtd, query, "r") is True
        assert path_exists_bool(dtd, parse_xpath("coexist[z]"), "r") is False

    def test_text_step(self, dtd):
        from repro.xpath.ast import TextStep

        assert path_exists_bool(dtd, TextStep(), "b") is None
        assert path_exists_bool(dtd, TextStep(), "coexist") is False


class TestQualifierConnectives:
    def test_equality_never_true(self, dtd):
        assert qualifier_bool(dtd, '[b = "x"]', "coexist") is None
        assert qualifier_bool(dtd, '[z = "x"]', "coexist") is False

    def test_or(self, dtd):
        assert qualifier_bool(dtd, "[b or z]", "coexist") is True
        assert qualifier_bool(dtd, "[z or zz]", "coexist") is False
        assert qualifier_bool(dtd, "[b or c]", "exclusive") is None

    def test_not(self, dtd):
        assert qualifier_bool(dtd, "[not(z)]", "coexist") is True
        assert qualifier_bool(dtd, "[not(b)]", "coexist") is False
        assert qualifier_bool(dtd, "[not(b)]", "exclusive") is None

    def test_attribute_unknown(self, dtd):
        assert qualifier_bool(dtd, "[@x]", "coexist") is None

    def test_and_partial_knowledge(self, dtd):
        # one conjunct decided true, the other data-dependent
        assert qualifier_bool(dtd, "[b and c]", "stars") is False
        assert qualifier_bool(dtd, "[b and b]", "stars") is None


class TestExclusiveConflict:
    def test_required_first_labels(self):
        assert required_first_labels(parse_qualifier("[b/x]")) == {"b"}
        assert required_first_labels(parse_qualifier("[(b | c)/x]")) == {
            "b",
            "c",
        }
        assert required_first_labels(parse_qualifier("[b and c]")) in (
            {"b"},
            {"c"},
        )
        assert required_first_labels(parse_qualifier("[b or c]")) == {"b", "c"}
        assert required_first_labels(parse_qualifier("[//b]")) is None
        assert required_first_labels(parse_qualifier("[*]")) is None

    def test_conflict_at_choice(self, dtd):
        assert exclusive_conflict(
            dtd,
            parse_qualifier("[b]"),
            parse_qualifier("[c]"),
            "exclusive",
        )

    def test_no_conflict_at_seq(self, dtd):
        assert not exclusive_conflict(
            dtd, parse_qualifier("[b]"), parse_qualifier("[c]"), "coexist"
        )

    def test_no_conflict_with_shared_label(self, dtd):
        assert not exclusive_conflict(
            dtd,
            parse_qualifier("[b or c]"),
            parse_qualifier("[b]"),
            "exclusive",
        )

    def test_adex_q4_conflict(self, adex):
        left = parse_qualifier("[house/r-e.asking-price]")
        right = parse_qualifier("[apartment/r-e.unit-type]")
        assert exclusive_conflict(adex, left, right, "real-estate")
