"""Unit tests for Algorithm derive (Fig. 5)."""

import pytest

from repro.errors import ViewDerivationError
from repro.dtd.content import Choice, Epsilon, Name, Seq, Star, Str
from repro.dtd.parser import parse_dtd
from repro.core.derive import derive
from repro.core.spec import AccessSpec, STR_CHILD
from repro.xpath.parser import parse_xpath


def sigma_text_of(view, parent, child):
    return str(view.sigma_of(parent, child))


class TestPaperExample:
    """The nurse view of Example 3.2 / Fig. 2, structure and sigma."""

    def test_view_dtd_shape(self, nurse_view):
        node = nurse_view.node("dept")
        assert node.content == Seq(
            [Star(Name("patientInfo")), Name("staffInfo")]
        )
        treatment = nurse_view.node("treatment")
        assert isinstance(treatment.content, Choice)
        assert set(treatment.child_keys()) == {"dummy1", "dummy2"}

    def test_dummies_hide_labels(self, nurse_view):
        assert nurse_view.node("dummy1").content == Name("bill")
        assert nurse_view.node("dummy2").content == Seq(
            [Name("bill"), Name("medication")]
        )
        assert nurse_view.node("dummy1").is_dummy
        assert nurse_view.node("dummy2").is_dummy

    def test_sigma_annotations(self, nurse_view):
        assert sigma_text_of(nurse_view, "treatment", "dummy1") == "trial"
        assert sigma_text_of(nurse_view, "treatment", "dummy2") == "regular"
        assert sigma_text_of(nurse_view, "dummy1", "bill") == "bill"
        assert (
            sigma_text_of(nurse_view, "dept", "patientInfo")
            == "(clinicalTrial/patientInfo | patientInfo)"
        )
        assert (
            sigma_text_of(nurse_view, "hospital", "dept")
            == 'dept[*/patient/wardNo = "2"]'
        )

    def test_confidential_labels_absent(self, nurse_view):
        exposed = nurse_view.exposed_dtd().to_dtd_text()
        for secret in ("clinicalTrial", "trial", "regular"):
            assert secret not in exposed

    def test_view_is_dag(self, nurse_view):
        assert not nurse_view.is_recursive()

    def test_no_warnings_for_nurse_policy(self, nurse_view):
        # the conditional sits under a star production -> safe
        assert nurse_view.warnings == []


class TestPruning:
    def test_fully_inaccessible_subtree_pruned(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (keep, drop)>
            <!ELEMENT keep (#PCDATA)>
            <!ELEMENT drop (secret)>
            <!ELEMENT secret (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd).annotate("r", "drop", "N")
        view = derive(spec)
        assert view.node("r").content == Name("keep")
        assert "drop" not in view.reachable()
        assert "secret" not in view.reachable()

    def test_whole_view_can_collapse_to_root(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        spec = AccessSpec(dtd).annotate("r", "a", "N")
        view = derive(spec)
        assert isinstance(view.node("r").content, Epsilon)


class TestShortcutting:
    def test_seq_into_seq_splice(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m, z)>
            <!ELEMENT m (a, b)>
            <!ELEMENT a (#PCDATA)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT z (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd)
        spec.annotate("r", "m", "N")
        spec.annotate("m", "a", "Y")
        spec.annotate("m", "b", "Y")
        view = derive(spec)
        assert view.node("r").content == Seq(
            [Name("a"), Name("b"), Name("z")]
        )
        assert sigma_text_of(view, "r", "a") == "m/a"
        assert sigma_text_of(view, "r", "b") == "m/b"
        assert sigma_text_of(view, "r", "z") == "z"

    def test_multi_level_shortcut(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m)>
            <!ELEMENT m (n)>
            <!ELEMENT n (a)>
            <!ELEMENT a (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd)
        spec.annotate("r", "m", "N")
        spec.annotate("n", "a", "Y")
        view = derive(spec)
        assert view.node("r").content == Name("a")
        assert sigma_text_of(view, "r", "a") == "m/n/a"

    def test_choice_into_choice_splice(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m | z)>
            <!ELEMENT m (a | b)>
            <!ELEMENT a (#PCDATA)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT z (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd)
        spec.annotate("r", "m", "N")
        spec.annotate("m", "a", "Y")
        spec.annotate("m", "b", "Y")
        view = derive(spec)
        assert view.node("r").content == Choice(
            [Name("a"), Name("b"), Name("z")]
        )
        assert sigma_text_of(view, "r", "a") == "m/a"

    def test_compaction_of_duplicate_labels(self, nurse_view):
        # Example 3.4: patientInfo^1, patientInfo^2 -> patientInfo*
        production = nurse_view.node("dept").content
        assert isinstance(production.items[0], Star)

    def test_star_reg_under_star_splices(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m*)>
            <!ELEMENT m (a*)>
            <!ELEMENT a (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd)
        spec.annotate("r", "m", "N")
        spec.annotate("m", "a", "Y")
        view = derive(spec)
        assert view.node("r").content == Star(Name("a"))
        assert sigma_text_of(view, "r", "a") == "m/a"

    def test_single_name_reg_under_star_splices(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m*)>
            <!ELEMENT m (a)>
            <!ELEMENT a (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd)
        spec.annotate("r", "m", "N")
        spec.annotate("m", "a", "Y")
        view = derive(spec)
        assert view.node("r").content == Star(Name("a"))


class TestDummies:
    def test_seq_reg_under_choice_gets_dummy(self, nurse_view):
        # trial -> (bill): a 1-ary concatenation does NOT splice into
        # the treatment disjunction (Example 3.4)
        assert nurse_view.node("dummy1").is_dummy

    def test_choice_reg_under_seq_gets_dummy(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m, z)>
            <!ELEMENT m (a | b)>
            <!ELEMENT a (#PCDATA)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT z (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd)
        spec.annotate("r", "m", "N")
        spec.annotate("m", "a", "Y")
        spec.annotate("m", "b", "Y")
        view = derive(spec)
        (dummy_key,) = [
            key
            for key in view.children_of("r")
            if view.node(key).is_dummy
        ]
        assert view.node(dummy_key).content == Choice([Name("a"), Name("b")])
        assert sigma_text_of(view, "r", dummy_key) == "m"

    def test_dummy_names_avoid_collision_with_dtd(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m, dummy1)>
            <!ELEMENT m (a | b)>
            <!ELEMENT a (#PCDATA)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT dummy1 (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd)
        spec.annotate("r", "m", "N")
        spec.annotate("m", "a", "Y")
        spec.annotate("m", "b", "Y")
        view = derive(spec)
        dummies = [k for k in view.reachable() if view.node(k).is_dummy]
        assert dummies and all(not dtd.has_type(k) for k in dummies)


class TestChoiceBranchRemoval:
    def dtd_and_spec(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (keep | gone)>
            <!ELEMENT keep (#PCDATA)>
            <!ELEMENT gone (secret)>
            <!ELEMENT secret (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd).annotate("r", "gone", "N")
        return dtd, spec

    def test_default_preserves_branch_with_empty_dummy(self):
        _, spec = self.dtd_and_spec()
        view = derive(spec, preserve_choice_branches=True)
        production = view.node("r").content
        assert isinstance(production, Choice)
        dummy_keys = [
            item.name
            for item in production.items
            if view.node(item.name).is_dummy
        ]
        assert len(dummy_keys) == 1
        assert isinstance(view.node(dummy_keys[0]).content, Epsilon)
        assert view.warnings == []

    def test_paper_literal_removal_warns(self):
        _, spec = self.dtd_and_spec()
        view = derive(spec, preserve_choice_branches=False)
        assert view.node("r").content == Name("keep")
        assert any("choice branch" in warning for warning in view.warnings)


class TestStrAndConditionals:
    def test_hidden_text_becomes_empty_production(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        spec = AccessSpec(dtd).annotate("a", STR_CHILD, "N")
        view = derive(spec)
        assert isinstance(view.node("a").content, Epsilon)
        assert "a" not in view.sigma_text

    def test_visible_text_has_sigma(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        view = derive(AccessSpec(dtd))
        assert str(view.sigma_text["a"]) == "text()"

    def test_conditional_under_seq_warns(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>"
        )
        spec = AccessSpec(dtd).annotate("r", "a", '[text() = "x"]')
        view = derive(spec)
        assert any("materialization may abort" in w for w in view.warnings)

    def test_conditional_under_star_is_safe(self, nurse_view):
        assert nurse_view.warnings == []

    def test_conditional_qualifier_preserved_in_sigma(self):
        dtd = parse_dtd("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>")
        spec = AccessSpec(dtd).annotate("r", "a", '[text() = "ok"]')
        view = derive(spec)
        assert str(view.sigma_of("r", "a")) == 'a[text() = "ok"]'


class TestRecursiveInaccessible:
    def test_cycle_through_inaccessible_types(self, recursive_view):
        # r -> a (hidden), a -> (b | c), c -> a (hidden): the view must
        # retain the recursive structure through dummies
        assert recursive_view.is_recursive()
        exposed = {
            recursive_view.node(key).label
            for key in recursive_view.reachable()
        }
        assert "a" not in exposed and "c" not in exposed
        assert "b" in exposed

    def test_recursive_dummy_production_filled(self, recursive_view):
        dummies = [
            key
            for key in recursive_view.reachable()
            if recursive_view.node(key).is_dummy
        ]
        assert dummies
        for key in dummies:
            # every dummy must have a registered production
            recursive_view.node(key)


class TestPreconditions:
    def test_non_normal_dtd_rejected(self):
        from repro.dtd.content import Opt
        from repro.dtd.dtd import DTD
        from repro.dtd.content import Name as CName, STR

        dtd = DTD("r", {"r": Opt(CName("a")), "a": STR})
        with pytest.raises(ViewDerivationError):
            derive(AccessSpec(dtd))

    def test_identity_spec_reproduces_dtd(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (a, b*)>
            <!ELEMENT a (c | d)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT c (#PCDATA)>
            <!ELEMENT d EMPTY>
            """
        )
        # normal-form: b* inside seq is not normal; rewrite the DTD
        dtd = parse_dtd(
            """
            <!ELEMENT r (a, bs)>
            <!ELEMENT bs (b*)>
            <!ELEMENT a (c | d)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT c (#PCDATA)>
            <!ELEMENT d EMPTY>
            """
        )
        view = derive(AccessSpec(dtd))
        assert view.exposed_dtd() == dtd
        for parent, child in view.sigma:
            assert str(view.sigma_of(parent, child)) == child
