"""Unit tests for the SecureQueryEngine facade (Fig. 3)."""

import pytest

from repro.errors import QueryRejectedError, SecurityError
from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.workloads.hospital import (
    doctor_spec,
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture()
def engine():
    dtd = hospital_dtd()
    built = SecureQueryEngine(dtd)
    built.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    built.register_policy("doctor", doctor_spec(dtd))
    return built


@pytest.fixture()
def document():
    return hospital_document(seed=7, max_branch=4)


class TestPolicyAdministration:
    def test_policies_listed(self, engine):
        assert engine.policies() == ["doctor", "nurse"]

    def test_duplicate_policy_rejected(self, engine):
        with pytest.raises(SecurityError):
            engine.register_policy("nurse", nurse_spec(hospital_dtd()))

    def test_unbound_parameters_rejected(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        with pytest.raises(SecurityError):
            engine.register_policy("nurse", nurse_spec(dtd))

    def test_foreign_dtd_rejected(self):
        from repro.core.spec import AccessSpec
        from repro.dtd.parser import parse_dtd

        other = parse_dtd("<!ELEMENT x (#PCDATA)>")
        engine = SecureQueryEngine(hospital_dtd())
        with pytest.raises(SecurityError):
            engine.register_policy("p", AccessSpec(other))

    def test_drop_policy(self, engine):
        engine.drop_policy("doctor")
        assert engine.policies() == ["nurse"]

    def test_unknown_policy_rejected(self, engine, document):
        with pytest.raises(SecurityError):
            engine.query("ghost", "//patient", document)


class TestViewExposure:
    def test_nurse_view_hides_confidential_labels(self, engine):
        text = engine.view_dtd_text("nurse")
        for secret in ("clinicalTrial", "trial", "regular"):
            assert secret not in text

    def test_doctor_view_hides_staff(self, engine):
        text = engine.view_dtd_text("doctor")
        assert "staffInfo" not in text
        assert "clinicalTrial" in text


class TestQuerying:
    def test_projected_results_are_view_shaped(self, engine, document):
        results = engine.query("nurse", "//treatment", document)
        assert results
        for element in results:
            assert element.label == "treatment"
            child_labels = {child.label for child in element.element_children()}
            assert child_labels <= {"dummy1", "dummy2"}

    def test_raw_results_opt_out(self, engine, document):
        raw = engine.query(
            "nurse",
            "//treatment",
            document,
            options=ExecutionOptions(project=False),
        )
        assert raw
        assert all(node.parent is not None for node in raw)

    def test_results_restricted_by_policy(self, engine, document):
        nurse_names = {
            element.string_value()
            for element in engine.query("nurse", "//patient/name", document)
        }
        doctor_names = {
            element.string_value()
            for element in engine.query("doctor", "//patient/name", document)
        }
        assert nurse_names <= doctor_names

    def test_hidden_labels_return_nothing(self, engine, document):
        assert engine.query("nurse", "//clinicalTrial", document) == []
        assert engine.query("doctor", "//staffInfo", document) == []

    def test_query_accepts_parsed_ast(self, engine, document):
        from repro.xpath.parser import parse_xpath

        parsed = parse_xpath("//patient/name")
        assert engine.query("nurse", parsed, document) == engine.query(
            "nurse", "//patient/name", document
        ) or len(engine.query("nurse", parsed, document)) == len(
            engine.query("nurse", "//patient/name", document)
        )

    def test_text_results_returned_as_strings(self, engine, document):
        results = engine.query("nurse", "//patient/name/text()", document)
        assert results and all(isinstance(value, str) for value in results)

    def test_optimize_toggle_preserves_results(self, engine, document):
        fast = engine.query(
            "nurse",
            "//patient/name",
            document,
            options=ExecutionOptions(optimize=True),
        )
        slow = engine.query(
            "nurse",
            "//patient/name",
            document,
            options=ExecutionOptions(optimize=False),
        )
        assert len(fast) == len(slow)


class TestMaterializedStrategy:
    def test_strategies_agree(self, engine, document):
        from repro.xmlmodel.serialize import serialize

        for text in ("//patient/name", "//treatment", "//patient/name/text()"):
            via_rewrite = engine.query("nurse", text, document)
            via_view = engine.query(
                "nurse",
                text,
                document,
                options=ExecutionOptions(strategy="materialized"),
            )
            assert sorted(
                value if isinstance(value, str) else serialize(value)
                for value in via_rewrite
            ) == sorted(
                value if isinstance(value, str) else serialize(value)
                for value in via_view
            ), text

    def test_materialized_view_cached(self, engine, document):
        materialized = ExecutionOptions(strategy="materialized")
        first = engine.query("nurse", "//patient", document, options=materialized)
        second = engine.query("nurse", "//patient", document, options=materialized)
        # same cached view tree => identical node objects
        assert [id(node) for node in first] == [id(node) for node in second]

    def test_invalidate_drops_cache(self, engine, document):
        materialized = ExecutionOptions(strategy="materialized")
        first = engine.query("nurse", "//patient", document, options=materialized)
        engine.invalidate("nurse")
        second = engine.query("nurse", "//patient", document, options=materialized)
        if first:  # fresh materialization produces fresh objects
            assert first[0] is not second[0]

    def test_unknown_strategy_rejected(self, engine, document):
        with pytest.raises(SecurityError):
            engine.query(
                "nurse",
                "//patient",
                document,
                options=ExecutionOptions(strategy="magic"),
            )


class TestExplain:
    def test_report_fields(self, engine, document):
        report = engine.explain("nurse", "//patient//bill", document)
        assert "dept" in str(report.rewritten)
        assert report.result_count >= 0
        assert report.visits > 0
        assert report.policy == "nurse"
        assert "QueryReport" in repr(report)


class TestStrictMode:
    def test_labels_outside_view_rejected(self, document):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd, strict=True)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        with pytest.raises(QueryRejectedError):
            engine.query("nurse", "//clinicalTrial", document)
        # labels inside the view still work
        engine.query("nurse", "//patient", document)


class TestRecursivePolicies:
    def test_recursive_view_requires_document(self, recursive_dtd, recursive_spec):
        engine = SecureQueryEngine(recursive_dtd)
        engine.register_policy("rec", recursive_spec)
        with pytest.raises(SecurityError):
            engine.rewrite_query("rec", "//b")

    def test_recursive_query_roundtrip(self, recursive_dtd, recursive_spec):
        from repro.dtd.generator import DocumentGenerator

        engine = SecureQueryEngine(recursive_dtd)
        engine.register_policy("rec", recursive_spec)
        document = DocumentGenerator(
            recursive_dtd, seed=4, max_depth=10
        ).generate()
        results = engine.query("rec", "//b", document)
        assert all(element.label == "b" for element in results)
        # height-keyed rewriter caching: a second document of the same
        # height reuses the unfolded rewriter
        again = DocumentGenerator(
            recursive_dtd, seed=4, max_depth=10
        ).generate()
        assert len(engine.query("rec", "//b", again)) == len(results)


class TestColumnarStrategy:
    """``strategy="columnar"`` answers exactly like the default
    virtual strategy — same projected copies, same raw node identities
    — while running set-at-a-time over the cached NodeTable."""

    QUERIES = (
        "//patient/name",
        "//treatment",
        "//patient/name/text()",
        "//patient[name]",
        "(//patient/name | //treatment)",
    )

    def test_projected_answers_agree(self, engine, document):
        from repro.core.options import ExecutionOptions
        from repro.xmlmodel.serialize import serialize

        columnar = ExecutionOptions(strategy="columnar")
        for text in self.QUERIES:
            via_virtual = engine.query("nurse", text, document)
            via_columnar = engine.query(
                "nurse", text, document, options=columnar
            )
            assert [
                value if isinstance(value, str) else serialize(value)
                for value in via_columnar
            ] == [
                value if isinstance(value, str) else serialize(value)
                for value in via_virtual
            ], text
            assert via_columnar.report.strategy == "columnar"

    def test_raw_answers_are_identical_nodes(self, engine, document):
        from repro.core.options import ExecutionOptions

        raw_virtual = ExecutionOptions(project=False)
        raw_columnar = ExecutionOptions(project=False, strategy="columnar")
        for text in self.QUERIES:
            a = engine.query("nurse", text, document, options=raw_virtual)
            b = engine.query("nurse", text, document, options=raw_columnar)
            assert [id(node) for node in b] == [id(node) for node in a], text

    def test_node_table_cached_per_document(self, engine, document):
        from repro.core.options import ExecutionOptions

        columnar = ExecutionOptions(strategy="columnar")
        engine.query("nurse", "//patient", document, options=columnar)
        assert len(engine._stores) == 1
        (cached_document, table) = engine._stores[id(document)]
        assert cached_document is document
        engine.query("nurse", "//treatment", document, options=columnar)
        assert engine._stores[id(document)][1] is table

    def test_invalidate_drops_node_tables(self, engine, document):
        from repro.core.options import ExecutionOptions

        columnar = ExecutionOptions(strategy="columnar")
        engine.query("nurse", "//patient", document, options=columnar)
        assert engine._stores
        engine.invalidate()
        assert not engine._stores

    def test_policy_scoped_invalidate_drops_node_tables(
        self, engine, document
    ):
        from repro.core.options import ExecutionOptions

        engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="columnar"),
        )
        engine.invalidate("nurse")
        assert not engine._stores

    def test_explain_reports_columnar(self, engine, document):
        from repro.core.options import ExecutionOptions

        report = engine.explain(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="columnar"),
        )
        assert report.strategy == "columnar"
        assert "columnar" in report.summary()
