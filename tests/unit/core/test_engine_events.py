"""Audit events emitted by the SecureQueryEngine serving path."""

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.errors import QueryRejectedError, XPathSyntaxError
from repro.obs.events import RingBufferSink
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture()
def document():
    return hospital_document(seed=7, max_branch=4)


def build_engine(strict=False):
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd, strict=strict)
    ring = engine.add_sink(RingBufferSink(capacity=64))
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return engine, ring


class TestPolicyEvents:
    def test_register_drop_invalidate(self):
        engine, ring = build_engine()
        engine.invalidate("nurse")
        engine.invalidate()
        engine.drop_policy("nurse")
        actions = [
            (event.action, event.policy) for event in ring.events(kind="policy")
        ]
        assert actions == [
            ("register", "nurse"),
            ("invalidate", "nurse"),
            ("invalidate", "*"),
            ("drop", "nurse"),
        ]

    def test_drop_of_unknown_policy_emits_nothing(self):
        engine, ring = build_engine()
        engine.drop_policy("ghost")
        actions = [event.action for event in ring.events(kind="policy")]
        assert actions == ["register"]


class TestQueryEvents:
    def test_answered_query_emits_one_event(self, document):
        engine, ring = build_engine()
        result = engine.query("nurse", "//patient/name", document)
        (event,) = ring.events(kind="query")
        assert event.policy == "nurse"
        assert event.query == "//patient/name"
        assert "dept" in event.rewritten  # document query, not view query
        assert event.strategy == "virtual"
        assert event.result_count == len(result)
        assert event.visits == result.report.visits
        assert event.latency_seconds >= 0
        assert not event.slow and event.profile is None

    def test_cache_hit_is_recorded(self, document):
        engine, ring = build_engine()
        engine.query("nurse", "//patient", document)
        engine.query("nurse", "//patient", document)
        first, second = ring.events(kind="query")
        assert not first.cache_hit
        assert second.cache_hit

    def test_no_sink_means_no_events(self, document):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        engine.query("nurse", "//patient", document)
        assert engine.events.emitted == 0

    def test_slow_query_attaches_profile(self, document):
        engine, ring = build_engine()
        options = ExecutionOptions(slow_query_threshold=0.0)
        engine.query("nurse", "//patient/name", document, options=options)
        (event,) = ring.events(kind="query")
        assert event.slow
        assert event.profile and "rows" in event.profile

    def test_fast_query_below_threshold_not_slow(self, document):
        engine, ring = build_engine()
        options = ExecutionOptions(slow_query_threshold=60.0)
        engine.query("nurse", "//patient/name", document, options=options)
        (event,) = ring.events(kind="query")
        assert not event.slow and event.profile is None


class TestDenialEvents:
    def test_strict_rejection_emits_denial(self, document):
        engine, ring = build_engine(strict=True)
        with pytest.raises(QueryRejectedError):
            engine.query("nurse", "//clinicalTrial", document)
        (event,) = ring.events(kind="denial")
        assert event.policy == "nurse"
        assert event.label == "clinicalTrial"
        assert event.code == "E_LABEL_DENIED"
        assert "clinicalTrial" in event.message
        # a denial is not an engine error: no ErrorEvent rides along
        assert ring.events(kind="error") == []

    def test_accepted_query_emits_no_denial(self, document):
        engine, ring = build_engine(strict=True)
        engine.query("nurse", "//patient", document)
        assert ring.events(kind="denial") == []


class TestErrorEvents:
    def test_parse_failure_emits_error_event(self, document):
        engine, ring = build_engine()
        with pytest.raises(XPathSyntaxError):
            engine.query("nurse", "//patient[", document)
        (event,) = ring.events(kind="error")
        assert event.policy == "nurse"
        assert event.query == "//patient["
        assert event.code == "E_PARSE_XPATH"


class TestCanaryWiring:
    def test_enable_canary_checks_every_query_at_rate_one(self, document):
        engine, ring = build_engine()
        canary = engine.enable_canary(sample_rate=1.0)
        assert engine.canary is canary
        engine.query("nurse", "//patient/name", document)
        engine.query("nurse", "//patient/name", document)
        events = ring.events(kind="canary")
        assert len(events) == 2
        assert all(event.ok and event.violations == 0 for event in events)
        assert canary.checks == 2 and canary.violations == 0

    def test_disable_canary(self, document):
        engine, ring = build_engine()
        engine.enable_canary(sample_rate=1.0)
        engine.disable_canary()
        assert engine.canary is None
        engine.query("nurse", "//patient", document)
        assert ring.events(kind="canary") == []

    def test_unprojected_results_are_not_checked(self, document):
        # project=False returns raw document nodes, which by design do
        # not match the view-projected oracle — the canary must skip.
        engine, ring = build_engine()
        engine.enable_canary(sample_rate=1.0)
        engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(project=False),
        )
        assert ring.events(kind="canary") == []

    def test_canary_counts_in_metrics(self, document):
        from repro.obs.metrics import (
            disable_metrics,
            enable_metrics,
            metrics_registry,
        )

        engine, _ = build_engine()
        engine.enable_canary(sample_rate=1.0)
        metrics_registry().reset()
        enable_metrics()
        try:
            engine.query("nurse", "//patient", document)
            snapshot = metrics_registry().snapshot()
            assert snapshot["counters"].get("canary.checks") == 1
            assert "canary.violations" not in snapshot["counters"]
        finally:
            disable_metrics()


class TestExportFacade:
    def test_export_prometheus_renders_registry(self, document):
        from repro.obs.metrics import (
            disable_metrics,
            enable_metrics,
            metrics_registry,
        )

        engine, _ = build_engine()
        metrics_registry().reset()
        enable_metrics()
        try:
            engine.query("nurse", "//patient", document)
            text = engine.export_prometheus()
            assert "# TYPE repro_query_count_total counter" in text
        finally:
            disable_metrics()
