"""Unit tests for image-graph construction (Section 5.1)."""

import pytest

from repro.core.image import (
    QUAL_LABEL,
    build_image,
    build_qualifier_image,
    reach_types,
)
from repro.dtd.parser import parse_dtd
from repro.xpath.parser import parse_qualifier, parse_xpath

# Fig. 9's DTD: a -> (b | c); b -> d; c -> d; d -> (e | f); e -> g; f -> g
FIG9_DTD = """
<!ELEMENT a (b | c)>
<!ELEMENT b (d)>
<!ELEMENT c (d)>
<!ELEMENT d (e | f)>
<!ELEMENT e (g)>
<!ELEMENT f (g)>
<!ELEMENT g (#PCDATA)>
"""


@pytest.fixture(scope="module")
def fig9():
    return parse_dtd(FIG9_DTD)


def labels(graph):
    from repro.core.image import RESULT_LABEL

    return sorted(
        node.label
        for node in graph.all_nodes()
        if node.label != RESULT_LABEL
    )


class TestReach:
    def test_label_reach(self, fig9):
        assert reach_types(fig9, parse_xpath("b"), "a") == {"b"}
        assert reach_types(fig9, parse_xpath("x"), "a") == set()

    def test_wildcard_reach(self, fig9):
        assert reach_types(fig9, parse_xpath("*"), "a") == {"b", "c"}

    def test_chain_reach(self, fig9):
        assert reach_types(fig9, parse_xpath("*/d/*/g"), "a") == {"g"}

    def test_descendant_reach(self, fig9):
        reached = reach_types(fig9, parse_xpath("//g"), "a")
        assert reached == {"g"}
        everything = reach_types(fig9, parse_xpath("//."), "a")
        assert everything == {"a", "b", "c", "d", "e", "f", "g"}

    def test_union_reach(self, fig9):
        assert reach_types(fig9, parse_xpath("b | c"), "a") == {"b", "c"}

    def test_text_reach(self, fig9):
        assert reach_types(fig9, parse_xpath("text()"), "g") == {"#text"}


class TestImages:
    def test_label_image(self, fig9):
        graph = build_image(fig9, parse_xpath("b"), "a")
        assert labels(graph) == ["a", "b"]
        assert [leaf.label for leaf in graph.leaves] == ["b"]

    def test_label_image_empty(self, fig9):
        assert build_image(fig9, parse_xpath("g"), "a") is None

    def test_wildcard_image(self, fig9):
        graph = build_image(fig9, parse_xpath("*"), "a")
        assert labels(graph) == ["a", "b", "c"]

    def test_example52_wildcard_chain(self, fig9):
        # image(a[b]/*/d/*/g, a) equals the whole DTD graph (Fig. 9a)
        graph = build_image(fig9, parse_xpath("a[b]/*/d/*/g"), "a")
        assert graph is None  # 'a' is not a child of 'a'

    def test_example52_from_context(self, fig9):
        # evaluated AT a: the paper writes the first step 'a[b]' as the
        # context; our equivalent is .[b]/*/d/*/g
        graph = build_image(fig9, parse_xpath(".[b]/*/d/*/g"), "a")
        assert set(labels(graph)) == {"a", "b", "c", "d", "e", "f", "g", QUAL_LABEL}

    def test_example52_explicit_branches(self, fig9):
        p3 = parse_xpath(".[b]/b/d/e/g | ./c/d/f/g")
        graph = build_image(fig9, p3, "a")
        assert graph is not None
        # both branch paths present
        assert labels(graph).count("g") >= 1

    def test_union_image_merges_roots(self, fig9):
        graph = build_image(fig9, parse_xpath("b | c"), "a")
        root_children = sorted(child.label for child in graph.root.children)
        assert root_children == ["b", "c"]

    def test_descendant_image_is_reachable_subgraph(self, fig9):
        from repro.xpath.ast import Descendant, Label

        graph = build_image(fig9, Descendant(Label("g")), "a")
        assert set(labels(graph)) == {"a", "b", "c", "d", "e", "f", "g"}

    def test_qualifier_attachment(self, fig9):
        # [d/e] at b is data-dependent (e sits in a disjunction), so
        # the qualifier graph is attached rather than folded
        graph = build_image(fig9, parse_xpath("b[d/e]"), "a")
        (leaf,) = graph.leaves
        assert leaf.label == "b"
        assert leaf.quals and leaf.quals[0].label == QUAL_LABEL

    def test_decided_qualifier_folds(self, fig9):
        # [d] at b is decided true (required child): no qualifier node
        graph = build_image(fig9, parse_xpath("b[d]"), "a")
        (leaf,) = graph.leaves
        assert leaf.quals == []

    def test_equality_constant_in_label(self, fig9):
        root, imprecise = build_qualifier_image(
            fig9, parse_qualifier('[g = "5"]'), "e"
        )
        assert not imprecise
        assert root.label == '%s=5' % QUAL_LABEL

    def test_disjunctive_qualifier_marked_imprecise(self, fig9):
        _, imprecise = build_qualifier_image(
            fig9, parse_qualifier("[b or c]"), "a"
        )
        assert imprecise

    def test_negation_marked_imprecise(self, fig9):
        _, imprecise = build_qualifier_image(
            fig9, parse_qualifier("[not(b)]"), "a"
        )
        assert imprecise

    def test_conjunction_merges(self, fig9):
        root, imprecise = build_qualifier_image(
            fig9, parse_qualifier("[e and f]"), "d"
        )
        assert not imprecise
        assert sorted(child.label for child in root.children) == ["e", "f"]

    def test_absolute_image(self, fig9):
        graph = build_image(fig9, parse_xpath("/a/b/d"), "a")
        assert graph.root.label == "#document"
        assert [leaf.label for leaf in graph.leaves] == ["d"]

    def test_image_size_bound(self, fig9):
        # |image(p, A)| <= |D| * |p| (Section 5.1)
        query = parse_xpath(".[b]/*/d/*/g")
        graph = build_image(fig9, query, "a")
        assert graph.size() <= fig9.size() * query.size()
