"""Unit tests for the view-materialization semantics (Section 3.3)."""

import pytest

from repro.errors import MaterializationAborted
from repro.core.derive import derive
from repro.core.materialize import materialize, materialize_subtree
from repro.core.spec import AccessSpec
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import conforms
from repro.workloads.hospital import hospital_document
from repro.xmlmodel.parser import parse_document


class TestNurseView:
    def test_view_conforms_to_exposed_dtd(self, nurse, nurse_view):
        document = hospital_document(seed=7, max_branch=4)
        view_tree = materialize(document, nurse_view, nurse)
        assert conforms(view_tree, nurse_view.exposed_dtd())

    def test_dummy_relabeling(self, nurse, nurse_view):
        document = hospital_document(seed=7, max_branch=4)
        view_tree = materialize(document, nurse_view, nurse)
        labels = {node.label for node in view_tree.iter_elements()}
        assert "trial" not in labels and "regular" not in labels
        assert "dummy1" in labels or "dummy2" in labels

    def test_only_matching_ward_included(self, nurse, nurse_view):
        document = hospital_document(seed=7, max_branch=4)
        view_tree = materialize(document, nurse_view, nurse)
        wards = {
            node.string_value() for node in view_tree.find_all("wardNo")
        }
        # every patient present belongs to a dept that has a ward-2
        # patient (the dept-level qualifier of Example 3.1)
        depts = view_tree.find_all("dept")
        for dept in depts:
            dept_wards = {
                node.string_value() for node in dept.find_all("wardNo")
            }
            assert "2" in dept_wards
        del wards

    def test_trial_patients_merged_into_patientinfo(self, nurse, nurse_view):
        text = """
        <hospital><dept>
          <clinicalTrial><patientInfo>
            <patient><name>secret</name><wardNo>2</wardNo>
              <treatment><trial><bill>5</bill></trial></treatment></patient>
          </patientInfo></clinicalTrial>
          <patientInfo>
            <patient><name>open</name><wardNo>2</wardNo>
              <treatment><regular><bill>7</bill><medication>x</medication></regular></treatment></patient>
          </patientInfo>
          <staffInfo/>
        </dept></hospital>
        """
        document = parse_document(text)
        view_tree = materialize(document, nurse_view, nurse)
        names = sorted(
            node.string_value() for node in view_tree.find_all("name")
        )
        assert names == ["open", "secret"]
        # both patients hang off patientInfo elements under dept
        dept = view_tree.find_all("dept")[0]
        patient_infos = dept.child_elements("patientInfo")
        assert sum(len(pi.find_all("patient")) for pi in patient_infos) == 2


class TestShapeRules:
    def test_str_rule_copies_text(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        view = derive(AccessSpec(dtd))
        document = parse_document("<r><a>hello</a></r>")
        view_tree = materialize(document, view, AccessSpec(dtd))
        assert view_tree.find_all("a")[0].string_value() == "hello"

    def test_seq_rule_requires_exactly_one(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>"
        )
        spec = AccessSpec(dtd).annotate("r", "a", '[text() = "keep"]')
        view = derive(spec)
        good = parse_document("<r><a>keep</a><b>x</b></r>")
        bad = parse_document("<r><a>drop</a><b>x</b></r>")
        materialize(good, view, spec)
        with pytest.raises(MaterializationAborted):
            materialize(bad, view, spec)

    def test_choice_rule_requires_unique_alternative(self, recursive_spec, recursive_view):
        document = parse_document("<r><a><b>v</b></a></r>")
        view_tree = materialize(document, recursive_view, recursive_spec)
        assert view_tree.string_value() == "v"

    def test_star_rule_filters_inaccessible(self, nurse, nurse_view):
        # ward-9 departments simply do not appear (no abort)
        text = """
        <hospital><dept>
          <clinicalTrial><patientInfo/></clinicalTrial>
          <patientInfo>
            <patient><name>bob</name><wardNo>9</wardNo>
              <treatment><trial><bill>1</bill></trial></treatment></patient>
          </patientInfo><staffInfo/>
        </dept></hospital>
        """
        view_tree = materialize(parse_document(text), nurse_view, nurse)
        assert view_tree.find_all("dept") == []

    def test_root_label_mismatch(self, nurse, nurse_view):
        with pytest.raises(MaterializationAborted):
            materialize(parse_document("<clinic/>"), nurse_view, nurse)

    def test_attributes_copied_for_real_nodes(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        spec = AccessSpec(dtd)
        view = derive(spec)
        document = parse_document('<r><a id="7">x</a></r>')
        view_tree = materialize(document, view, spec)
        assert view_tree.find_all("a")[0].get("id") == "7"


class TestSubtreeProjection:
    def test_materialize_subtree_matches_full(self, nurse, nurse_view):
        document = hospital_document(seed=7, max_branch=4)
        full = materialize(document, nurse_view, nurse)
        # project one treatment origin and compare against the full view
        from repro.xpath.evaluator import evaluate
        from repro.xpath.parser import parse_xpath

        doc_treatments = evaluate(
            parse_xpath("//treatment"), document, ordered=True
        )
        view_treatments = full.find_all("treatment")
        projectable = []
        for origin in doc_treatments:
            try:
                projectable.append(
                    materialize_subtree(
                        document, nurse_view, nurse, "treatment", origin
                    )
                )
            except MaterializationAborted:
                pass  # treatments outside the nurse's ward
        matched = [
            any(
                candidate.structurally_equal(projected)
                for candidate in view_treatments
            )
            for projected in projectable
        ]
        assert view_treatments  # sanity: the seed has visible treatments
        assert all(matched[: len(view_treatments)])
