"""Unit tests for the naive baseline of Section 6."""

import pytest

from repro.core.accessibility import annotate_accessibility
from repro.core.naive import ACCESSIBLE_QUALIFIER, naive_rewrite
from repro.workloads.adex import adex_document, adex_spec
from repro.workloads.queries import ADEX_QUERIES
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath


class TestRewriteRules:
    def test_q1_matches_paper(self):
        # "the naive approach evaluates it as
        #  //buyer-info//contact-info[@accessibility='1']"
        result = naive_rewrite(ADEX_QUERIES["Q1"])
        assert str(result) == '//buyer-info//contact-info[@accessibility = "1"]'

    def test_q2_matches_paper(self):
        result = naive_rewrite(ADEX_QUERIES["Q2"])
        assert str(result) == (
            '(//house//r-e.warranty[@accessibility = "1"] | '
            '//apartment//r-e.warranty[@accessibility = "1"])'
        )

    def test_q3_shape(self):
        # "//buyer-info[//company-id and //contact-info][@accessibility='1']"
        result = str(naive_rewrite(ADEX_QUERIES["Q3"]))
        assert result.startswith("//buyer-info[")
        assert result.endswith('[@accessibility = "1"]')
        assert "//company-id" in result and "//contact-info" in result

    def test_child_axes_relaxed_everywhere(self):
        result = str(naive_rewrite(parse_xpath("a/b/c")))
        # the query is relative, so the spelling keeps the context dot
        assert result == './/a//b//c[@accessibility = "1"]'

    def test_wildcard_relaxed(self):
        result = str(naive_rewrite(parse_xpath("*/b")))
        assert result == './/*//b[@accessibility = "1"]'

    def test_union_gets_qualifier_per_branch(self):
        result = naive_rewrite(parse_xpath("a | b"))
        assert str(result).count("@accessibility") == 2

    def test_existing_qualifier_kept(self):
        result = str(naive_rewrite(parse_xpath('a[b = "1"]')))
        assert '[.//b = "1"]' in result
        assert result.endswith('[@accessibility = "1"]')

    def test_empty_query_stays_empty(self):
        assert naive_rewrite(parse_xpath("0")).is_empty

    def test_qualifier_object(self):
        assert str(ACCESSIBLE_QUALIFIER) == '@accessibility = "1"'


class TestSecurityProperties:
    @pytest.fixture()
    def annotated(self, adex, adex_policy):
        document = adex_document(seed=4, buyers=10, ads=40)
        annotate_accessibility(document, adex_policy)
        return document

    def test_only_accessible_elements_returned(self, annotated):
        for query in ADEX_QUERIES.values():
            for node in evaluate(naive_rewrite(query), annotated):
                assert node.get("accessibility") == "1"

    def test_hidden_categories_unreachable(self, annotated):
        result = evaluate(naive_rewrite(parse_xpath("//employment")), annotated)
        assert result == []

    def test_naive_agrees_with_view_on_q1(
        self, annotated, adex_view, adex_policy
    ):
        from repro.core.rewrite import Rewriter

        rewriter = Rewriter(adex_view)
        query = ADEX_QUERIES["Q1"]
        naive_result = {
            id(node) for node in evaluate(naive_rewrite(query), annotated)
        }
        view_result = {
            id(node) for node in evaluate(rewriter.rewrite(query), annotated)
        }
        assert naive_result == view_result
