"""Unit tests for Algorithm optimize (Fig. 10)."""

import pytest

from repro.core.optimize import Optimizer, optimize
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath

DTD_TEXT = """
<!ELEMENT r (pair, either, items)>
<!ELEMENT pair (b, c)>
<!ELEMENT either (b | c)>
<!ELEMENT items (item*)>
<!ELEMENT item (b, tag)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
"""


@pytest.fixture(scope="module")
def dtd():
    return parse_dtd(DTD_TEXT)


@pytest.fixture(scope="module")
def optimizer(dtd):
    return Optimizer(dtd)


def opt(optimizer, text):
    return str(optimizer.optimize(parse_xpath(text)))


class TestQualifierFolding:
    def test_coexistence_removes_qualifier(self, optimizer):
        # Example 5.1 first case
        assert opt(optimizer, "pair[b and c]") == "pair"

    def test_exclusive_folds_to_empty(self, optimizer):
        assert opt(optimizer, "either[b and c]") == "0"

    def test_nonexistence_folds_to_empty(self, optimizer):
        assert opt(optimizer, "pair[tag]") == "0"

    def test_data_dependent_qualifier_kept(self, optimizer):
        assert opt(optimizer, "either[b]") == "either[b]"

    def test_equality_value_kept(self, optimizer):
        assert opt(optimizer, 'pair[b = "1"]') == 'pair[b = "1"]'

    def test_equality_on_missing_path_folds(self, optimizer):
        assert opt(optimizer, 'pair[z = "1"]') == "0"


class TestStructuralPruning:
    def test_nonexistent_step_pruned(self, optimizer):
        # Example 5.1 third case: (a U b)/c with c only under a
        assert opt(optimizer, "(pair | either)/c | items/c") == (
            "(pair/c | either/c)"
        )

    def test_wildcard_expansion(self, optimizer):
        assert opt(optimizer, "pair/*") == "(pair/b | pair/c)"

    def test_descendant_expansion(self, optimizer):
        assert opt(optimizer, "items//tag") == "items/item/tag"

    def test_descendant_or_self_expansion(self, optimizer):
        # a leading // anchors at the document node, so the expansion
        # goes through the root element
        result = opt(optimizer, "//c")
        assert result == "/(r/pair/c | r/either/c)"

    def test_unknown_label_empty(self, optimizer):
        assert opt(optimizer, "ghost/b") == "0"


class TestUnionPruning:
    def test_contained_branch_dropped(self, optimizer):
        # item[tag] is contained in item (tag is required anyway)
        assert opt(optimizer, "items/item | items/item[tag]") == "items/item"

    def test_wildcard_absorbs_label(self, optimizer):
        result = opt(optimizer, "items/(item | *)")
        assert result == "items/item"

    def test_unrelated_branches_kept(self, optimizer):
        result = opt(optimizer, "pair/b | either/c")
        assert result == "(pair/b | either/c)"


class TestRecursiveFallback:
    def test_recursive_region_keeps_descendant(self):
        dtd = parse_dtd(
            """
            <!ELEMENT node (leaf | kids)>
            <!ELEMENT kids (node)>
            <!ELEMENT leaf (#PCDATA)>
            """
        )
        result = optimize(dtd, parse_xpath("//leaf"))
        assert "//" in str(result)
        # and it still evaluates correctly
        for seed in range(4):
            document = DocumentGenerator(dtd, seed=seed, max_depth=8).generate()
            expected = {id(n) for n in evaluate(parse_xpath("//leaf"), document)}
            actual = {id(n) for n in evaluate(result, document)}
            assert expected == actual

    def test_mixed_recursive_and_dag(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (meta, tree)>
            <!ELEMENT meta (#PCDATA)>
            <!ELEMENT tree (leaf | kids)>
            <!ELEMENT kids (tree)>
            <!ELEMENT leaf (#PCDATA)>
            """
        )
        result = optimize(dtd, parse_xpath("//meta | //leaf"))
        text = str(result)
        assert "meta" in text and "leaf" in text


class TestEquivalence:
    QUERIES = [
        "pair/b",
        "//b",
        "//*",
        "items/item[b and tag]",
        "pair[b and c]/b | either[b and c]/b",
        "(pair | either | items)/b",
        "//item[not(tag)]",
        'items/item[b = "x"]/tag',
        "r | .",
        "//item[tag]/b | //item/b",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_optimized_query_equivalent(self, dtd, optimizer, text):
        query = parse_xpath(text)
        optimized = optimizer.optimize(query)
        for seed in range(5):
            document = DocumentGenerator(
                dtd, seed=seed, max_branch=3
            ).generate()
            expected = sorted(id(n) for n in evaluate(query, document))
            actual = sorted(id(n) for n in evaluate(optimized, document))
            assert expected == actual, text


class TestAbsoluteQueries:
    def test_absolute_root(self, optimizer):
        assert opt(optimizer, "/r/pair/b") == "/r/pair/b"

    def test_absolute_wrong_root(self, optimizer):
        assert opt(optimizer, "/x/pair") == "0"

    def test_leading_descendant(self, optimizer):
        result = opt(optimizer, "//tag")
        assert result == "/r/items/item/tag"


class TestPerTargetSoundness:
    """Fig. 10's printed case (4) can pair a continuation optimized at
    B with prefixes landing at B'; the per-target DP must not."""

    def test_no_cross_type_qualifier_leak(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m, n)>
            <!ELEMENT m (x)>
            <!ELEMENT n (x)>
            <!ELEMENT x (y | z)>
            <!ELEMENT y (#PCDATA)>
            <!ELEMENT z (#PCDATA)>
            """
        )
        # [y] is data-dependent at x under both m and n; now make a
        # query whose qualifier folds differently per branch target:
        query = parse_xpath("(m | n)/x[y and z]")
        optimized = optimize(dtd, query)
        assert str(optimized) == "0"  # exclusive at x everywhere

    def test_mixed_target_types(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (m, n)>
            <!ELEMENT m (q)>
            <!ELEMENT n (q, extra)>
            <!ELEMENT q (#PCDATA)>
            <!ELEMENT extra (#PCDATA)>
            """
        )
        # [extra] holds always at n, never at m
        query = parse_xpath("(m | n)[extra]/q")
        optimized = optimize(dtd, query)
        assert str(optimized) == "n/q"


class TestIdempotenceAndCost:
    def test_optimizing_twice_is_stable(self, dtd, optimizer):
        for text in TestEquivalence.QUERIES:
            once = optimizer.optimize(parse_xpath(text))
            twice = optimizer.optimize(once)
            assert once == twice, text

    def test_optimized_visits_fewer_nodes(self, dtd, optimizer):
        from repro.xpath.evaluator import XPathEvaluator

        document = DocumentGenerator(dtd, seed=1, max_branch=20).generate()
        query = parse_xpath("//tag")
        optimized = optimizer.optimize(query)
        before = XPathEvaluator()
        before.evaluate(query, document)
        after = XPathEvaluator()
        after.evaluate(optimized, document)
        assert after.visits <= before.visits
