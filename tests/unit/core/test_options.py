"""The redesigned query surface: ``ExecutionOptions``, the structured
``QueryResult``, and the 2.0 removal of the pre-1.1 boolean keywords
(``options=ExecutionOptions(...)`` is the only spelling now)."""

import warnings

import pytest

from repro.core.engine import QueryResult, SecureQueryEngine
from repro.core.options import DEFAULT_OPTIONS, ExecutionOptions
from repro.errors import SecurityError
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture()
def engine():
    dtd = hospital_dtd()
    built = SecureQueryEngine(dtd)
    built.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return built


@pytest.fixture()
def document():
    return hospital_document(seed=7, max_branch=4)


class TestExecutionOptions:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.strategy == "virtual"
        assert options.optimize and options.project and options.use_cache
        assert not options.use_index
        assert options == DEFAULT_OPTIONS

    def test_legacy_strategy_alias_normalized(self):
        assert ExecutionOptions(strategy="rewrite").strategy == "virtual"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SecurityError):
            ExecutionOptions(strategy="magic")

    def test_with_copies(self):
        options = ExecutionOptions().with_(use_index=True)
        assert options.use_index
        assert not DEFAULT_OPTIONS.use_index

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionOptions().use_index = True


class TestQueryResult:
    def test_is_list_compatible(self, engine, document):
        result = engine.query("nurse", "//patient", document)
        assert isinstance(result, QueryResult)
        assert isinstance(result, list)
        assert result.results == list(result)
        assert engine.query("nurse", "//clinicalTrial", document) == []

    def test_report_attached(self, engine, document):
        result = engine.query("nurse", "//patient", document)
        assert result.report.policy == "nurse"
        assert result.report.result_count == len(result)
        assert result.report.strategy == "virtual"

    def test_materialized_report(self, engine, document):
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="materialized"),
        )
        assert result.report.strategy == "materialized"
        again = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="materialized"),
        )
        assert again.report.cache_hit  # materialized view tree reused

    def test_report_repr_and_summary_include_optimized(self, engine, document):
        report = engine.query("nurse", "//patient", document).report
        assert str(report.optimized) in repr(report)
        summary = report.summary()
        assert "optimized: %s" % report.optimized in summary
        assert "timings" in summary
        assert "plan cache" in summary


class TestLegacyKeywordsRemoved:
    """The 1.x per-call boolean keywords are gone in 2.0: ``query()``
    and ``explain()`` take ``options`` only, and reject everything
    else with ``TypeError`` (not a silent ignore)."""

    def test_legacy_boolean_keyword_rejected(self, engine, document):
        with pytest.raises(TypeError):
            engine.query(
                "nurse", "//patient", document, optimize=True, use_index=True
            )

    def test_legacy_project_keyword_rejected(self, engine, document):
        with pytest.raises(TypeError):
            engine.query("nurse", "//patient", document, project=False)

    def test_legacy_strategy_keyword_rejected(self, engine, document):
        with pytest.raises(TypeError):
            engine.query(
                "nurse", "//patient", document, strategy="materialized"
            )

    def test_unknown_keyword_rejected(self, engine, document):
        with pytest.raises(TypeError):
            engine.query("nurse", "//patient", document, turbo=True)

    def test_positional_bool_rejected(self, engine, document):
        # pre-1.1 call shape: optimize passed positionally after the
        # document — now a typed error, not a silent options misparse
        with pytest.raises(TypeError, match="ExecutionOptions"):
            engine.query("nurse", "//patient", document, False)

    def test_explain_rejects_legacy_keyword(self, engine, document):
        with pytest.raises(TypeError):
            engine.explain("nurse", "//patient", document, optimize=False)

    def test_options_path_does_not_warn(self, engine, document):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.query(
                "nurse", "//patient", document, options=ExecutionOptions()
            )
            engine.query("nurse", "//patient", document)
            engine.explain(
                "nurse",
                "//patient",
                document,
                options=ExecutionOptions(optimize=False),
            )

    def test_options_replaces_each_legacy_spelling(self, engine, document):
        raw = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(project=False),
        )
        assert raw and all(node.parent is not None for node in raw)
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="materialized"),
        )
        assert result.report.strategy == "materialized"
        unoptimized = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(optimize=False),
        )
        assert (
            unoptimized.report.optimized == unoptimized.report.rewritten
        )


class TestOptionsWireShape:
    def test_round_trip_defaults(self):
        options = ExecutionOptions()
        assert ExecutionOptions.from_dict(options.to_dict()) == options

    def test_round_trip_with_limits(self):
        from repro.robustness.governor import QueryLimits

        options = ExecutionOptions(
            strategy="columnar",
            use_index=True,
            trace=True,
            slow_query_threshold=0.25,
            limits=QueryLimits(deadline_seconds=0.5, max_results=10),
        )
        assert ExecutionOptions.from_dict(options.to_dict()) == options

    def test_missing_keys_take_defaults(self):
        assert ExecutionOptions.from_dict({}) == ExecutionOptions()

    def test_unknown_keys_ignored(self):
        options = ExecutionOptions.from_dict(
            {"strategy": "columnar", "future_knob": 42}
        )
        assert options.strategy == "columnar"
