"""The redesigned query surface: ``ExecutionOptions``, the structured
``QueryResult``, and the one-release deprecation shims for the pre-1.1
boolean keywords."""

import warnings

import pytest

from repro.core.engine import QueryResult, SecureQueryEngine
from repro.core.options import DEFAULT_OPTIONS, ExecutionOptions
from repro.errors import SecurityError
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture()
def engine():
    dtd = hospital_dtd()
    built = SecureQueryEngine(dtd)
    built.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return built


@pytest.fixture()
def document():
    return hospital_document(seed=7, max_branch=4)


class TestExecutionOptions:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.strategy == "virtual"
        assert options.optimize and options.project and options.use_cache
        assert not options.use_index
        assert options == DEFAULT_OPTIONS

    def test_legacy_strategy_alias_normalized(self):
        assert ExecutionOptions(strategy="rewrite").strategy == "virtual"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SecurityError):
            ExecutionOptions(strategy="magic")

    def test_with_copies(self):
        options = ExecutionOptions().with_(use_index=True)
        assert options.use_index
        assert not DEFAULT_OPTIONS.use_index

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionOptions().use_index = True


class TestQueryResult:
    def test_is_list_compatible(self, engine, document):
        result = engine.query("nurse", "//patient", document)
        assert isinstance(result, QueryResult)
        assert isinstance(result, list)
        assert result.results == list(result)
        assert engine.query("nurse", "//clinicalTrial", document) == []

    def test_report_attached(self, engine, document):
        result = engine.query("nurse", "//patient", document)
        assert result.report.policy == "nurse"
        assert result.report.result_count == len(result)
        assert result.report.strategy == "virtual"

    def test_materialized_report(self, engine, document):
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="materialized"),
        )
        assert result.report.strategy == "materialized"
        again = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="materialized"),
        )
        assert again.report.cache_hit  # materialized view tree reused

    def test_report_repr_and_summary_include_optimized(self, engine, document):
        report = engine.query("nurse", "//patient", document).report
        assert str(report.optimized) in repr(report)
        summary = report.summary()
        assert "optimized: %s" % report.optimized in summary
        assert "timings" in summary
        assert "plan cache" in summary


class TestDeprecationShims:
    def test_legacy_keywords_warn_and_work(self, engine, document):
        with pytest.warns(DeprecationWarning):
            legacy = engine.query(
                "nurse", "//patient", document, optimize=True, use_index=True
            )
        new = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(optimize=True, use_index=True),
        )
        assert [str(n) for n in legacy] == [str(n) for n in new]

    def test_legacy_project_keyword(self, engine, document):
        with pytest.warns(DeprecationWarning):
            raw = engine.query("nurse", "//patient", document, project=False)
        assert raw and all(node.parent is not None for node in raw)

    def test_legacy_strategy_keyword(self, engine, document):
        with pytest.warns(DeprecationWarning):
            result = engine.query(
                "nurse", "//patient", document, strategy="materialized"
            )
        assert result.report.strategy == "materialized"

    def test_new_path_does_not_warn(self, engine, document):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.query(
                "nurse", "//patient", document, options=ExecutionOptions()
            )
            engine.query("nurse", "//patient", document)

    def test_mixing_options_and_legacy_rejected(self, engine, document):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                engine.query(
                    "nurse",
                    "//patient",
                    document,
                    options=ExecutionOptions(),
                    optimize=False,
                )

    def test_unknown_keyword_rejected(self, engine, document):
        with pytest.raises(TypeError):
            engine.query("nurse", "//patient", document, turbo=True)

    def test_positional_optimize_bool(self, engine, document):
        # pre-1.1 call shape: optimize passed positionally after the
        # document
        with pytest.warns(DeprecationWarning):
            result = engine.query("nurse", "//patient", document, False)
        assert result.report.optimized == result.report.rewritten

    def test_explain_accepts_legacy_and_new(self, engine, document):
        with pytest.warns(DeprecationWarning):
            legacy = engine.explain(
                "nurse", "//patient", document, optimize=False
            )
        new = engine.explain(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(optimize=False),
        )
        assert str(legacy.rewritten) == str(new.rewritten)
