"""Unit tests for security-view persistence."""

import json

import pytest

from repro.core.derive import derive
from repro.core.persistence import (
    FORMAT,
    load_view,
    save_view,
    view_from_dict,
    view_to_dict,
)
from repro.core.rewrite import Rewriter
from repro.errors import ViewDerivationError
from repro.xpath.parser import parse_xpath


def assert_views_equivalent(original, restored, queries):
    """Same exposed DTD and identical rewriting behaviour."""
    assert restored.exposed_dtd() == original.exposed_dtd()
    assert restored.root_key == original.root_key
    assert set(restored.nodes) == set(original.nodes)
    original_rewriter = Rewriter(original) if not original.is_recursive() else None
    restored_rewriter = Rewriter(restored) if not restored.is_recursive() else None
    if original_rewriter is None:
        return
    for text in queries:
        query = parse_xpath(text)
        assert str(restored_rewriter.rewrite(query)) == str(
            original_rewriter.rewrite(query)
        ), text


class TestRoundTrip:
    def test_nurse_view(self, nurse_view):
        restored = view_from_dict(view_to_dict(nurse_view))
        assert_views_equivalent(
            nurse_view,
            restored,
            ["//patient//bill", "//dummy2/medication", "dept[patientInfo]"],
        )

    def test_adex_view(self, adex_view):
        restored = view_from_dict(view_to_dict(adex_view))
        assert_views_equivalent(
            adex_view,
            restored,
            [
                "//buyer-info/contact-info",
                "//buyer-info[//company-id and //contact-info]",
            ],
        )

    def test_recursive_view(self, recursive_view):
        restored = view_from_dict(view_to_dict(recursive_view))
        assert restored.is_recursive()
        assert set(restored.nodes) == set(recursive_view.nodes)

    def test_hidden_attributes_survive(self):
        from repro.core.spec import AccessSpec
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd(
            "<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>"
            "<!ATTLIST a public CDATA #IMPLIED secret CDATA #IMPLIED>"
        )
        spec = AccessSpec(dtd).annotate_attribute("a", "secret", "N")
        view = derive(spec)
        restored = view_from_dict(view_to_dict(view))
        assert restored.hidden_attributes_of("a") == {"secret"}
        assert "secret" not in restored.exposed_dtd().attribute_decls("a")

    def test_dict_is_json_serializable(self, nurse_view):
        text = json.dumps(view_to_dict(nurse_view))
        restored = view_from_dict(json.loads(text))
        assert restored.root_key == nurse_view.root_key


class TestFiles:
    def test_save_and_load(self, tmp_path, nurse_view):
        target = tmp_path / "nurse-view.json"
        save_view(nurse_view, str(target))
        restored = load_view(str(target))
        assert_views_equivalent(nurse_view, restored, ["//patient/name"])

    def test_saved_file_is_stable(self, tmp_path, nurse_view):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_view(nurse_view, str(first))
        save_view(nurse_view, str(second))
        assert first.read_text() == second.read_text()


class TestErrors:
    def test_unknown_format_rejected(self):
        with pytest.raises(ViewDerivationError):
            view_from_dict({"format": "something-else"})

    def test_missing_root_rejected(self, nurse_view):
        payload = view_to_dict(nurse_view)
        payload["root"] = "ghost"
        with pytest.raises(ViewDerivationError):
            view_from_dict(payload)


class TestEndToEnd:
    def test_restored_view_answers_queries(self, nurse, nurse_view):
        from repro.core.materialize import materialize
        from repro.workloads.hospital import hospital_document
        from repro.xpath.evaluator import XPathEvaluator

        document = hospital_document(seed=7, max_branch=4)
        restored = view_from_dict(view_to_dict(nurse_view))
        evaluator = XPathEvaluator()
        rewriter = Rewriter(restored)
        query = parse_xpath("//patient//bill")
        rewritten = rewriter.rewrite(query)
        expected = sorted(
            node.string_value()
            for node in evaluator.evaluate(
                query, materialize(document, nurse_view, nurse)
            )
        )
        actual = sorted(
            node.string_value()
            for node in evaluator.evaluate(rewritten, document)
        )
        assert expected == actual
