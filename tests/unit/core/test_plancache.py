"""Unit tests for the engine-level plan cache: LRU bounds, counters,
and invalidation wiring (``register_policy`` / ``drop_policy`` /
``invalidate``)."""

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.core.plancache import PlanCache
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture()
def engine():
    dtd = hospital_dtd()
    built = SecureQueryEngine(dtd)
    built.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return built


@pytest.fixture()
def document():
    return hospital_document(seed=7, max_branch=4)


class TestPlanCacheUnit:
    def _entry(self, tag):
        # a minimal stand-in for a CompiledQuery (the cache only
        # touches the per-entry hit counter)
        from types import SimpleNamespace

        return SimpleNamespace(tag=tag, hits=0)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(("p", "a", True, None), self._entry("a"))
        cache.put(("p", "b", True, None), self._entry("b"))
        assert cache.get(("p", "a", True, None)) is not None  # a now MRU
        cache.put(("p", "c", True, None), self._entry("c"))  # evicts b
        assert ("p", "b", True, None) not in cache
        assert ("p", "a", True, None) in cache
        assert ("p", "c", True, None) in cache
        assert cache.evictions == 1

    def test_hit_miss_counters(self):
        cache = PlanCache(capacity=4)
        key = ("p", "q", True, None)
        assert cache.get(key) is None
        cache.put(key, self._entry("q"))
        assert cache.get(key) is not None
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert stats.as_dict()["hits"] == 1

    def test_capacity_zero_disables(self):
        cache = PlanCache(capacity=0)
        key = ("p", "q", True, None)
        cache.put(key, self._entry("q"))
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)

    def test_policy_scoped_invalidation(self):
        cache = PlanCache(capacity=8)
        cache.put(("p1", "a", True, None), self._entry("a"))
        cache.put(("p2", "b", True, None), self._entry("b"))
        removed = cache.invalidate("p1")
        assert removed == 1
        assert ("p2", "b", True, None) in cache
        assert cache.invalidations == 1

    def test_clear_resets_counters(self):
        cache = PlanCache(capacity=2)
        cache.put(("p", "a", True, None), self._entry("a"))
        cache.get(("p", "a", True, None))
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats.hits == 0 and stats.misses == 0


class TestEngineIntegration:
    def test_repeated_query_hits(self, engine, document):
        engine.query("nurse", "//patient", document)
        engine.query("nurse", "//patient", document)
        stats = engine.plan_cache_stats()
        assert stats.hits >= 1
        assert stats.misses >= 1

    def test_cache_key_includes_optimize_flag(self, engine, document):
        options_on = ExecutionOptions(optimize=True)
        options_off = ExecutionOptions(optimize=False)
        engine.query("nurse", "//patient", document, options=options_on)
        engine.query("nurse", "//patient", document, options=options_off)
        assert len(engine.plan_cache) == 2

    def test_string_and_ast_queries_share_entries(self, engine, document):
        from repro.xpath.parser import parse_xpath

        engine.query("nurse", "//patient/name", document)
        before = len(engine.plan_cache)
        engine.query("nurse", parse_xpath("//patient/name"), document)
        assert len(engine.plan_cache) == before

    def test_drop_policy_invalidates(self, engine, document):
        engine.query("nurse", "//patient", document)
        assert len(engine.plan_cache) == 1
        engine.drop_policy("nurse")
        assert len(engine.plan_cache) == 0

    def test_invalidate_drops_plans(self, engine, document):
        engine.query("nurse", "//patient", document)
        engine.invalidate("nurse")
        assert len(engine.plan_cache) == 0
        engine.query("nurse", "//patient", document)
        assert not engine.query(
            "nurse", "//patient", document
        ).report.cache_hit or len(engine.plan_cache) == 1

    def test_invalidate_all_drops_plans(self, engine, document):
        engine.query("nurse", "//patient", document)
        engine.invalidate()
        assert len(engine.plan_cache) == 0

    def test_reregistered_policy_does_not_reuse_plans(self, document):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        engine.query("nurse", "//patient", document)
        engine.drop_policy("nurse")
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="4")
        result = engine.query("nurse", "//patient", document)
        assert not result.report.cache_hit

    def test_bounded_by_plan_cache_size(self, document):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd, plan_cache_size=3)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        for label in ("patient", "name", "wardNo", "treatment", "bill"):
            engine.query("nurse", "//" + label, document)
        assert len(engine.plan_cache) == 3
        assert engine.plan_cache_stats().evictions == 2

    def test_rewrite_query_primes_cache(self, engine, document):
        rewritten = engine.rewrite_query("nurse", "//patient")
        assert len(engine.plan_cache) == 1
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(optimize=False),
        )
        assert result.report.cache_hit
        assert str(result.report.rewritten) == str(rewritten)

    def test_report_timings_present(self, engine, document):
        first = engine.query("nurse", "//patient", document)
        assert not first.report.cache_hit
        assert {"parse", "rewrite", "optimize"} <= set(first.report.timings)
        second = engine.query("nurse", "//patient", document)
        assert second.report.cache_hit
        assert "evaluate" in second.report.timings
        assert second.report.total_time() > 0


class TestRegistryCounters:
    """Cache traffic mirrors into the process-wide metrics registry
    when metrics are enabled (and never otherwise)."""

    @pytest.fixture(autouse=True)
    def enabled_registry(self):
        from repro.obs.metrics import (
            disable_metrics,
            enable_metrics,
            metrics_registry,
        )

        metrics_registry().reset()
        enable_metrics()
        yield metrics_registry()
        disable_metrics()
        metrics_registry().reset()

    def _counters(self, registry):
        return registry.snapshot()["counters"]

    def test_hits_and_misses_recorded(self, enabled_registry, engine, document):
        engine.query("nurse", "//patient", document)
        engine.query("nurse", "//patient", document)
        counters = self._counters(enabled_registry)
        assert counters["plan_cache.misses"] == 1
        assert counters["plan_cache.hits"] == 1

    def test_evictions_recorded(self, enabled_registry, document):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd, plan_cache_size=2)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        for label in ("patient", "name", "wardNo", "bill"):
            engine.query("nurse", "//" + label, document)
        counters = self._counters(enabled_registry)
        assert counters["plan_cache.evictions"] == 2
        assert engine.plan_cache_stats().evictions == 2

    def test_invalidations_recorded(self, enabled_registry, engine, document):
        engine.query("nurse", "//patient", document)
        engine.query("nurse", "//patient/name", document)
        engine.invalidate("nurse")
        counters = self._counters(enabled_registry)
        assert counters["plan_cache.invalidations"] == 2

    def test_registry_matches_cache_stats(
        self, enabled_registry, engine, document
    ):
        for _ in range(3):
            engine.query("nurse", "//patient", document)
        counters = self._counters(enabled_registry)
        stats = engine.plan_cache_stats()
        assert counters["plan_cache.hits"] == stats.hits
        assert counters["plan_cache.misses"] == stats.misses

    def test_disabled_metrics_keep_local_counters_only(
        self, enabled_registry, engine, document
    ):
        from repro.obs.metrics import disable_metrics

        disable_metrics()
        engine.query("nurse", "//patient", document)
        counters = self._counters(enabled_registry)
        assert counters.get("plan_cache.misses", 0) == 0
        assert engine.plan_cache_stats().misses == 1


class TestExecutionShapeKeys:
    """The hardened cache key carries the execution shape (strategy,
    index availability): flipping either on a warm cache must compile
    fresh instead of serving a plan primed for the other backend."""

    def test_strategy_flip_on_warm_cache_misses(self, engine, document):
        from repro.xmlmodel.serialize import serialize

        virtual = engine.query("nurse", "//patient/name", document)
        assert not virtual.report.cache_hit
        columnar = engine.query(
            "nurse",
            "//patient/name",
            document,
            options=ExecutionOptions(strategy="columnar"),
        )
        assert not columnar.report.cache_hit
        assert columnar.report.strategy == "columnar"
        assert [serialize(node) for node in columnar] == [
            serialize(node) for node in virtual
        ]
        # each shape now hits its own entry
        assert engine.query(
            "nurse", "//patient/name", document
        ).report.cache_hit
        warm = engine.query(
            "nurse",
            "//patient/name",
            document,
            options=ExecutionOptions(strategy="columnar"),
        )
        assert warm.report.cache_hit
        assert warm.report.strategy == "columnar"

    def test_index_flip_on_warm_cache_misses(self, engine, document):
        engine.query("nurse", "//patient", document)
        indexed = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(use_index=True),
        )
        assert not indexed.report.cache_hit
        assert engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(use_index=True),
        ).report.cache_hit

    def test_keys_record_execution_shape(self, engine, document):
        engine.query("nurse", "//patient", document)
        engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="columnar", use_index=True),
        )
        keys = engine.plan_cache.keys()
        assert ("nurse", "//patient", True, None, "virtual", False) in keys
        assert ("nurse", "//patient", True, None, "columnar", True) in keys

    def test_columnar_without_cache_does_not_prime(self, engine, document):
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="columnar", use_cache=False),
        )
        assert not result.report.cache_hit
        assert result.report.strategy == "columnar"
        assert len(engine.plan_cache) == 0
