"""QueryReport coverage: stage timings across execution paths, the
end-to-end total, trace profiles, and engine-level metrics."""

import pytest

from repro.core.engine import QueryReport, SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.obs.metrics import (
    disable_metrics,
    enable_metrics,
    metrics_registry,
)
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture()
def engine():
    dtd = hospital_dtd()
    built = SecureQueryEngine(dtd)
    built.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return built


@pytest.fixture()
def document():
    return hospital_document(seed=7, max_branch=4)


class TestStageTimings:
    def test_cold_cache_carries_compile_stages(self, engine, document):
        report = engine.query("nurse", "//patient", document).report
        assert not report.cache_hit
        assert {"parse", "rewrite", "optimize", "evaluate"} <= set(
            report.timings
        )

    def test_warm_cache_still_reports_evaluate(self, engine, document):
        engine.query("nurse", "//patient", document)
        report = engine.query("nurse", "//patient", document).report
        assert report.cache_hit
        assert "evaluate" in report.timings

    def test_interpreter_path_has_no_compile_stage(self, engine, document):
        report = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(use_cache=False),
        ).report
        assert "compile" not in report.timings
        assert {"parse", "rewrite", "optimize", "evaluate"} <= set(
            report.timings
        )

    def test_columnar_path_reports_same_stages(self, engine, document):
        report = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="columnar"),
        ).report
        assert report.strategy == "columnar"
        assert {"parse", "rewrite", "optimize", "evaluate"} <= set(
            report.timings
        )

    def test_materialized_path_reports_materialize_stage(
        self, engine, document
    ):
        report = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="materialized"),
        ).report
        assert "materialize" in report.timings

    @pytest.mark.parametrize(
        "options",
        [
            ExecutionOptions(),
            ExecutionOptions(strategy="columnar"),
            ExecutionOptions(strategy="materialized"),
            ExecutionOptions(use_cache=False),
        ],
        ids=["virtual", "columnar", "materialized", "interpreter"],
    )
    def test_timings_non_negative(self, engine, document, options):
        report = engine.query(
            "nurse", "//patient", document, options=options
        ).report
        assert all(seconds >= 0.0 for seconds in report.timings.values())
        assert report.total_seconds >= 0.0


class TestTotalSeconds:
    def test_total_is_wall_time_not_stage_sum(self):
        # a warm-cache report carries the entry's build-time stages
        # next to this request's evaluate; the total must come from
        # the enclosing span, never from summing overlapping stages
        report = QueryReport(
            "p",
            "//a",
            "//a",
            "//a",
            1,
            1,
            timings={"parse": 0.5, "rewrite": 0.5, "evaluate": 0.001},
            total_seconds=0.002,
        )
        assert report.total_time() == 0.002

    def test_sum_fallback_without_span(self):
        report = QueryReport(
            "p", "//a", "//a", "//a", 1, 1, timings={"parse": 0.25}
        )
        assert report.total_time() == 0.25

    def test_engine_total_covers_every_stage(self, engine, document):
        engine.query("nurse", "//patient", document)
        report = engine.query("nurse", "//patient", document).report
        assert report.cache_hit
        # the warm request only ran evaluate; the stale build-time
        # stages must not inflate the end-to-end number
        assert report.total_seconds >= report.timings["evaluate"]
        assert report.total_seconds < sum(report.timings.values()) + 1.0


class TestRenderings:
    def test_summary_is_stable(self, engine, document):
        report = engine.query("nurse", "//patient", document).report
        text = report.summary()
        for field in (
            "policy   :",
            "query    :",
            "rewritten:",
            "optimized:",
            "strategy :",
            "results  :",
            "timings  :",
            "total    :",
        ):
            assert field in text

    def test_repr_mentions_key_fields(self, engine, document):
        report = engine.query("nurse", "//patient", document).report
        text = repr(report)
        assert text.startswith("QueryReport(")
        assert "policy='nurse'" in text
        assert "strategy='virtual'" in text

    def test_to_dict_is_json_safe(self, engine, document):
        import json

        report = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(trace=True),
        ).report
        out = report.to_dict()
        json.dumps(out)  # must not raise
        assert out["policy"] == "nurse"
        assert out["total_seconds"] == report.total_seconds
        assert out["profile"]["plans"]


class TestTraceProfile:
    def test_untraced_query_has_no_profile(self, engine, document):
        report = engine.query("nurse", "//patient", document).report
        assert report.profile is None

    def test_traced_query_builds_profile_tree(self, engine, document):
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(trace=True),
        )
        profile = result.report.profile
        assert profile is not None
        assert profile.strategy == "virtual"
        assert profile.roots
        text = profile.render()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "calls=" in text and "rows=" in text

    def test_columnar_profile_names_columnar_kernels(
        self, engine, document
    ):
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="columnar", trace=True),
        )
        text = result.report.profile.render()
        assert "posting-merge-join" in text or "child-link-walk" in text

    def test_trace_does_not_change_answers(self, engine, document):
        plain = engine.query("nurse", "//patient//bill", document)
        traced = engine.query(
            "nurse",
            "//patient//bill",
            document,
            options=ExecutionOptions(trace=True),
        )
        assert [str(n) for n in plain] == [str(n) for n in traced]

    def test_whole_query_profile_without_projection(self, engine, document):
        result = engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(trace=True, project=False),
        )
        profile = result.report.profile
        assert profile is not None
        assert len(profile.roots) == 1
        assert profile.roots[0].name != "target"


class TestEngineMetrics:
    def test_queries_fold_into_registry(self, engine, document):
        registry = metrics_registry()
        registry.reset()
        enable_metrics()
        try:
            engine.query("nurse", "//patient", document)
            engine.query("nurse", "//patient", document)
            snap = engine.metrics()
        finally:
            disable_metrics()
            registry.reset()
        assert snap["counters"]["query.count"] == 2
        assert snap["counters"]["query.count.virtual"] == 2
        assert snap["counters"]["plan_cache.misses"] == 1
        assert snap["counters"]["plan_cache.hits"] == 1
        assert snap["histograms"]["query.total_seconds"]["count"] == 2
        # the warm request must not re-observe build-time stages
        assert snap["histograms"]["stage.parse_seconds"]["count"] == 1
        assert snap["histograms"]["stage.evaluate_seconds"]["count"] == 2

    def test_disabled_metrics_record_nothing(self, engine, document):
        registry = metrics_registry()
        registry.reset()
        engine.query("nurse", "//patient", document)
        snap = engine.metrics()
        # handles created by earlier enabled runs survive reset() with
        # value 0; a disabled run must not move any of them
        assert snap["counters"].get("query.count", 0) == 0

    def test_columnar_records_node_table_build(self, engine, document):
        registry = metrics_registry()
        registry.reset()
        enable_metrics()
        try:
            engine.query(
                "nurse",
                "//patient",
                document,
                options=ExecutionOptions(strategy="columnar"),
            )
            snap = engine.metrics()
        finally:
            disable_metrics()
            registry.reset()
        assert snap["counters"]["node_table.builds"] == 1
        assert snap["histograms"]["node_table.rows"]["count"] == 1
