"""Unit tests for Algorithm rewrite (Fig. 6)."""

import pytest

from repro.errors import RewriteError
from repro.core.derive import derive
from repro.core.materialize import materialize
from repro.core.rewrite import Rewriter, rewrite
from repro.core.spec import AccessSpec
from repro.dtd.parser import parse_dtd
from repro.workloads.hospital import hospital_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath


def oracle_check(document, view, spec, query_texts):
    """p over the materialized view == rewrite(p) over the document."""
    view_tree = materialize(document, view, spec)
    rewriter = Rewriter(view)
    evaluator = XPathEvaluator()
    for text in query_texts:
        query = parse_xpath(text)
        on_view = sorted(
            node.string_value() for node in evaluator.evaluate(query, view_tree)
        )
        on_document = sorted(
            node.string_value()
            for node in evaluator.evaluate(rewriter.rewrite(query), document)
        )
        assert on_view == on_document, text


class TestExample41:
    def test_patient_bill_rewriting(self, nurse_view):
        """Example 4.1: //patient//bill over the nurse view."""
        rewriter = Rewriter(nurse_view)
        result = rewriter.rewrite(parse_xpath("//patient//bill"))
        text = str(result)
        # the paper's p1/p2/p3 shape: the dept qualifier, the
        # clinicalTrial-or-direct patientInfo union, and the
        # treatment-to-bill union through trial/regular
        assert 'dept[*/patient/wardNo = "2"]' in text
        assert "(clinicalTrial/patientInfo | patientInfo)" in text
        assert "trial/bill" in text
        assert "regular/bill" in text

    def test_descendant_or_self_includes_context(self, nurse_view):
        # //bill from treatment must include the epsilon path
        rewriter = Rewriter(nurse_view)
        result = rewriter.rewrite(parse_xpath("//treatment//bill"))
        assert "trial/bill" in str(result)


class TestBasicCases:
    def test_epsilon(self, nurse_view):
        assert str(rewrite(nurse_view, parse_xpath("."))) == "."

    def test_label_becomes_sigma(self, nurse_view):
        result = rewrite(nurse_view, parse_xpath("dept"))
        assert str(result) == 'dept[*/patient/wardNo = "2"]'

    def test_unknown_label_is_empty(self, nurse_view):
        assert rewrite(nurse_view, parse_xpath("submarine")).is_empty

    def test_hidden_label_is_empty(self, nurse_view):
        # clinicalTrial is not part of the view: the query selects
        # nothing rather than leaking
        assert rewrite(nurse_view, parse_xpath("//clinicalTrial")).is_empty
        assert rewrite(nurse_view, parse_xpath("//trial")).is_empty

    def test_wildcard_unions_children(self, nurse_view):
        result = str(rewrite(nurse_view, parse_xpath("*")))
        assert result == 'dept[*/patient/wardNo = "2"]'

    def test_empty_query(self, nurse_view):
        assert rewrite(nurse_view, parse_xpath("0")).is_empty

    def test_dummy_label_step(self, nurse_view):
        result = rewrite(
            nurse_view, parse_xpath("//treatment/dummy2/medication")
        )
        assert str(result).endswith("treatment/regular/medication")

    def test_text_step(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        view = derive(AccessSpec(dtd))
        result = rewrite(view, parse_xpath("a/text()"))
        assert str(result) == "a/text()"

    def test_absolute_query(self, nurse_view):
        result = rewrite(nurse_view, parse_xpath("/hospital/dept"))
        assert str(result) == '/hospital/dept[*/patient/wardNo = "2"]'

    def test_union_merges(self, nurse_view):
        result = rewrite(
            nurse_view, parse_xpath("dept/staffInfo | dept/patientInfo")
        )
        text = str(result)
        assert "staffInfo" in text and "patientInfo" in text


class TestQualifierRewriting:
    def test_existence_qualifier(self, nurse_view):
        result = rewrite(nurse_view, parse_xpath("dept[patientInfo]"))
        assert "[(clinicalTrial/patientInfo | patientInfo)]" in str(result)

    def test_equality_qualifier(self, nurse_view):
        result = rewrite(
            nurse_view, parse_xpath('//patient[wardNo = "2"]/name')
        )
        assert '[wardNo = "2"]' in str(result)

    def test_boolean_connectives(self, nurse_view):
        result = rewrite(
            nurse_view,
            parse_xpath("//patient[name and not(treatment/dummy1)]"),
        )
        text = str(result)
        assert "not(treatment/trial)" in text

    def test_qualifier_on_hidden_label_folds_false(self, nurse_view):
        result = rewrite(nurse_view, parse_xpath("//patient[clinicalTrial]"))
        assert result.is_empty

    def test_attribute_qualifier_passthrough(self, nurse_view):
        result = rewrite(nurse_view, parse_xpath('//patient[@x = "1"]'))
        assert '@x = "1"' in str(result)


class TestPerTargetSoundness:
    """The printed Fig. 6 case (4) composes continuations with foreign
    prefixes; the per-target variant must not leak across context
    types when accessibility is context-dependent."""

    def make_view(self):
        # x is accessible under m but NOT under n; both m and n are
        # visible, and both have x children in the document
        dtd = parse_dtd(
            """
            <!ELEMENT r (m, n)>
            <!ELEMENT m (x)>
            <!ELEMENT n (x)>
            <!ELEMENT x (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd).annotate("n", "x", "N")
        return dtd, spec, derive(spec)

    def test_no_cross_context_leak(self):
        from repro.xmlmodel.parser import parse_document

        dtd, spec, view = self.make_view()
        document = parse_document(
            "<r><m><x>public</x></m><n><x>secret</x></n></r>"
        )
        rewriter = Rewriter(view)
        evaluator = XPathEvaluator()
        query = parse_xpath("*/x")
        values = {
            node.string_value()
            for node in evaluator.evaluate(rewriter.rewrite(query), document)
        }
        assert values == {"public"}

    def test_oracle_on_context_dependent_view(self):
        from repro.xmlmodel.parser import parse_document

        dtd, spec, view = self.make_view()
        document = parse_document(
            "<r><m><x>public</x></m><n><x>secret</x></n></r>"
        )
        oracle_check(
            document, view, spec, ["*/x", "//x", "m/x | n/x", "*[x]"]
        )


class TestOracle:
    QUERIES = [
        "//patient/name",
        "//patient//bill",
        "dept/patientInfo/patient/name",
        "//dummy2/medication",
        "//staffInfo/staff/*",
        "//patient[treatment/dummy2]/name",
        "//*[medication]",
        "dept[staffInfo/staff]/patientInfo//name",
        "//treatment/*",
        "/hospital//nurse",
        "//patient[wardNo = \"2\" and treatment]/name",
    ]

    @pytest.mark.parametrize("seed", [7, 13, 29])
    def test_rewrite_equals_view_semantics(self, nurse, nurse_view, seed):
        document = hospital_document(seed=seed, max_branch=4)
        oracle_check(document, nurse_view, nurse, self.QUERIES)


class TestRecursiveViewRejection:
    def test_recursive_view_requires_unfolding(self, recursive_view):
        with pytest.raises(RewriteError):
            Rewriter(recursive_view)


class TestReach:
    def test_reach_reports_view_nodes(self, nurse_view):
        rewriter = Rewriter(nurse_view)
        assert rewriter.reach(parse_xpath("dept")) == ["dept"]
        reached = rewriter.reach(parse_xpath("//patient/*"))
        assert set(reached) == {"name", "treatment", "wardNo"}

    def test_reach_empty_for_hidden(self, nurse_view):
        rewriter = Rewriter(nurse_view)
        assert rewriter.reach(parse_xpath("//trial")) == []
