"""Unit tests for the simulation-based containment test (Prop. 5.1),
reproducing Examples 5.2 and 5.3."""

import pytest

from repro.core.image import build_image
from repro.core.simulation import node_simulated, simulates
from repro.dtd.parser import parse_dtd
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath

# The Fig. 9(a) DTD.  Example 5.2 evaluates the qualifier [b] to true
# at `a`, so `a`'s production must be a concatenation; the (e U f) and
# wildcard steps of p1/p2 likewise indicate concatenations at d.
FIG9_DTD = """
<!ELEMENT a (b, c)>
<!ELEMENT b (d)>
<!ELEMENT c (d)>
<!ELEMENT d (e, f)>
<!ELEMENT e (g)>
<!ELEMENT f (g)>
<!ELEMENT g (h*)>
<!ELEMENT h (#PCDATA)>
"""

# Example 5.2's queries, evaluated at an `a` element (the paper writes
# the context step explicitly as a[b]; here `.` is the context):
P1 = ".[b]/*/d/*/g"
P2 = ".[b]/(b | c)/d/(e | f)/g"
P3 = ".[b]/b/d/e/g | ./b/d/f/g"


@pytest.fixture(scope="module")
def fig9():
    return parse_dtd(FIG9_DTD)


def contained(dtd, smaller_text, larger_text, node):
    smaller = build_image(dtd, parse_xpath(smaller_text), node)
    larger = build_image(dtd, parse_xpath(larger_text), node)
    assert smaller is not None and larger is not None
    return simulates(smaller, larger)


class TestExample52:
    def test_true_qualifier_removed_from_image(self, fig9):
        # [b] at a is decided true by the co-existence constraint, so
        # the image carries no qualifier node (Example 5.2)
        graph = build_image(fig9, parse_xpath(".[b]/b/d"), "a")
        assert all(not node.quals for node in graph.all_nodes())

    def test_false_qualifier_invalidates(self, fig9):
        # [e] can never hold at b
        graph = build_image(fig9, parse_xpath(".[e]/b"), "a")
        assert graph is None


class TestExample53:
    """Example 5.3's positive and negative cases."""

    def test_p2_contained_in_p1(self, fig9):
        assert contained(fig9, P2, P1, "a")

    def test_p3_contained_in_p1(self, fig9):
        assert contained(fig9, P3, P1, "a")

    def test_p3_contained_in_p2(self, fig9):
        assert contained(fig9, P3, P2, "a")

    def test_p2_not_simulated_by_p3_despite_containment(self, fig9):
        # the approximation: containment actually holds (over this DTD
        # every d has both e and f), but the simulation test fails
        assert not contained(fig9, P2, P3, "a")


class TestBasicCases:
    def test_reflexive(self, fig9):
        assert contained(fig9, "b/d", "b/d", "a")

    def test_label_in_wildcard(self, fig9):
        assert contained(fig9, "b", "*", "a")
        assert not contained(fig9, "*", "b", "a")

    def test_qualifier_direction_flip(self, fig9):
        # [h] at g is data-dependent (star production): g[h] contained
        # in g, but not vice versa
        assert contained(fig9, "g[h]", "g", "e")
        assert not contained(fig9, "g", "g[h]", "e")

    def test_matching_qualifiers(self, fig9):
        assert contained(fig9, "g[h]", "g[h]", "e")

    def test_different_equality_constants_not_contained(self, fig9):
        assert not contained(fig9, 'g[h = "1"]', 'g[h = "2"]', "e")
        assert contained(fig9, 'g[h = "1"]', 'g[h = "1"]', "e")

    def test_equality_vs_existence_conservative(self, fig9):
        # [h = "1"] implies [h], but the labels '[]=1' vs '[]' differ,
        # so the approximate test conservatively refuses
        assert not contained(fig9, "g[h]", 'g[h = "1"]', "e")

    def test_imprecise_graphs_refuse(self, fig9):
        smaller = build_image(fig9, parse_xpath("e/g[not(h)]"), "d")
        larger = build_image(fig9, parse_xpath("e/g"), "d")
        # negation is outside C^-: the graph is marked imprecise
        assert smaller.imprecise
        assert not simulates(smaller, larger)


class TestSoundness:
    """If simulation claims containment, actual evaluation must agree
    (Prop. 5.1 is a sound approximation)."""

    PAIRS = [
        (P2, P1),
        (P3, P1),
        (P3, P2),
        ("b", "*"),
        ("g[h]", "g"),
        ("b/d/e", "b/d/*"),
        ("*/d", "(b | c)/d"),
    ]

    @pytest.mark.parametrize("smaller_text,larger_text", PAIRS)
    def test_claimed_containments_hold_on_instances(
        self, fig9, smaller_text, larger_text
    ):
        from repro.dtd.generator import DocumentGenerator

        start = "a" if smaller_text[0] != "g" else "e"
        if not contained(fig9, smaller_text, larger_text, start):
            pytest.skip("simulation does not claim containment")
        for seed in range(6):
            document = DocumentGenerator(fig9, seed=seed).generate()
            contexts = evaluate(parse_xpath("//" + start), document) or [
                document
            ]
            for context in contexts:
                smaller_result = {
                    id(node)
                    for node in evaluate(parse_xpath(smaller_text), context)
                }
                larger_result = {
                    id(node)
                    for node in evaluate(parse_xpath(larger_text), context)
                }
                assert smaller_result <= larger_result


def test_node_simulated_handles_shared_structure(fig9):
    graph = build_image(fig9, parse_xpath("b/d"), "a")
    assert node_simulated(graph.root, graph.root)
