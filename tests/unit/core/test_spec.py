"""Unit tests for access specifications (Section 3.2)."""

import pytest

from repro.errors import SpecificationError
from repro.core.spec import (
    ANN_N,
    ANN_Y,
    AccessSpec,
    CondAnnotation,
    STR_CHILD,
    spec_from_edges,
)
from repro.workloads.hospital import hospital_dtd
from repro.xpath.parser import parse_qualifier


@pytest.fixture()
def dtd():
    return hospital_dtd()


class TestAnnotation:
    def test_string_shorthand(self, dtd):
        spec = AccessSpec(dtd)
        spec.annotate("dept", "clinicalTrial", "N")
        spec.annotate("clinicalTrial", "patientInfo", "Y")
        spec.annotate("hospital", "dept", "[*/patient]")
        assert spec.ann("dept", "clinicalTrial") is ANN_N
        assert spec.ann("clinicalTrial", "patientInfo") is ANN_Y
        assert isinstance(spec.ann("hospital", "dept"), CondAnnotation)

    def test_qualifier_object(self, dtd):
        qualifier = parse_qualifier("[name]")
        spec = AccessSpec(dtd).annotate("patientInfo", "patient", qualifier)
        assert spec.ann("patientInfo", "patient").qualifier == qualifier

    def test_unknown_parent_rejected(self, dtd):
        with pytest.raises(SpecificationError):
            AccessSpec(dtd).annotate("ghost", "dept", "N")

    def test_non_edge_rejected(self, dtd):
        with pytest.raises(SpecificationError):
            AccessSpec(dtd).annotate("hospital", "patient", "N")

    def test_str_annotation_requires_text_production(self, dtd):
        spec = AccessSpec(dtd)
        spec.annotate("name", STR_CHILD, "N")  # name -> #PCDATA
        with pytest.raises(SpecificationError):
            spec.annotate("dept", STR_CHILD, "N")

    def test_unparseable_annotation_rejected(self, dtd):
        with pytest.raises(SpecificationError):
            AccessSpec(dtd).annotate("hospital", "dept", 42)

    def test_implicit_edges_are_none(self, dtd):
        spec = AccessSpec(dtd)
        assert spec.ann("dept", "patientInfo") is None
        assert not spec.is_explicit("dept", "patientInfo")

    def test_remove(self, dtd):
        spec = AccessSpec(dtd).annotate("dept", "clinicalTrial", "N")
        spec.remove("dept", "clinicalTrial")
        assert spec.ann("dept", "clinicalTrial") is None

    def test_constructor_dict(self, dtd):
        spec = AccessSpec(dtd, {("dept", "clinicalTrial"): "N"})
        assert spec.ann("dept", "clinicalTrial") is ANN_N

    def test_spec_from_edges(self, dtd):
        spec = spec_from_edges(
            dtd, [("dept", "clinicalTrial", "N"), ("treatment", "trial", "N")]
        )
        assert len(spec.annotations()) == 2


class TestParameters:
    def test_parameters_discovered(self, dtd):
        spec = AccessSpec(dtd).annotate(
            "hospital", "dept", "[*/patient/wardNo = $wardNo]"
        )
        assert spec.parameters() == {"wardNo"}

    def test_bind_produces_concrete_spec(self, dtd):
        spec = AccessSpec(dtd).annotate(
            "hospital", "dept", "[*/patient/wardNo = $wardNo]"
        )
        bound = spec.bind(wardNo="3")
        assert bound.parameters() == set()
        annotation = bound.ann("hospital", "dept")
        assert '"3"' in repr(annotation)

    def test_bind_leaves_original_untouched(self, dtd):
        spec = AccessSpec(dtd).annotate(
            "hospital", "dept", "[*/patient/wardNo = $wardNo]"
        )
        spec.bind(wardNo="3")
        assert spec.parameters() == {"wardNo"}

    def test_bind_missing_parameter_rejected(self, dtd):
        spec = AccessSpec(dtd).annotate(
            "hospital", "dept", "[*/patient/wardNo = $wardNo]"
        )
        with pytest.raises(SpecificationError):
            spec.bind(other="1")


class TestTypeAccessibility:
    def test_edge_classification(self, dtd):
        from repro.workloads.hospital import nurse_spec

        classes = nurse_spec(dtd).type_accessibility()
        assert classes[("dept", "clinicalTrial")] == "N"
        assert classes[("hospital", "dept")] == "cond"
        assert classes[("dept", "patientInfo")] == "Y"  # inherited
        assert classes[("treatment", "trial")] == "N"
        assert classes[("trial", "bill")] == "Y"  # override below N

    def test_inheritance_through_inaccessible(self, dtd):
        spec = AccessSpec(dtd).annotate("dept", "clinicalTrial", "N")
        classes = spec.type_accessibility()
        # patientInfo under clinicalTrial inherits N on that edge...
        assert classes[("clinicalTrial", "patientInfo")] == "N"
        # ...but stays Y under dept
        assert classes[("dept", "patientInfo")] == "Y"
