"""Unit tests for recursive-view unfolding (Section 4.2)."""

import pytest

from repro.errors import ViewDerivationError
from repro.core.derive import derive
from repro.core.materialize import materialize
from repro.core.rewrite import Rewriter
from repro.core.spec import AccessSpec
from repro.core.unfold import unfold_view, view_min_heights
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath


class TestMinHeights:
    def test_nurse_view_heights(self, nurse_view):
        heights = view_min_heights(nurse_view)
        assert heights["bill"] == 1
        assert heights["dummy1"] == 2
        assert heights["hospital"] == 1  # dept* may be empty

    def test_recursive_view_heights_finite(self, recursive_view):
        heights = view_min_heights(recursive_view)
        assert all(h != float("inf") for h in heights.values())


class TestUnfolding:
    def test_non_recursive_view_returned_unchanged(self, nurse_view):
        assert unfold_view(nurse_view, 10) is nurse_view

    def test_unfolded_view_is_dag(self, recursive_view):
        unfolded = unfold_view(recursive_view, 8)
        assert not unfolded.is_recursive()

    def test_levels_share_labels(self, recursive_view):
        unfolded = unfold_view(recursive_view, 8)
        labels = {}
        for key in unfolded.reachable():
            labels.setdefault(unfolded.node(key).label, []).append(key)
        assert any(len(keys) > 1 for keys in labels.values())

    def test_height_budget_respected(self, recursive_view):
        unfolded = unfold_view(recursive_view, 5)
        heights = view_min_heights(unfolded)
        # the deepest key level never exceeds the height bound
        deepest = max(
            int(key.rsplit("@", 1)[1]) for key in unfolded.reachable()
        )
        assert deepest <= 5
        assert heights[unfolded.root_key] != float("inf")

    def test_below_minimum_height_rejected(self, recursive_view):
        with pytest.raises(ViewDerivationError):
            unfold_view(recursive_view, 1)

    def test_inconsistent_view_rejected(self):
        from repro.core.view import SecurityView, ViewNode
        from repro.dtd.content import Name
        from repro.dtd.dtd import DTD
        from repro.dtd.content import STR
        from repro.xpath.ast import Label

        doc_dtd = DTD("r", {"r": STR})
        view = SecurityView(doc_dtd, root_key="r")
        view.add_node(ViewNode("r", "r", Name("r")))
        view.set_sigma("r", "r", Label("r"))
        with pytest.raises(ViewDerivationError):
            unfold_view(view, 10)


class TestRewritingOverUnfoldedViews:
    QUERIES = ["//b", "//dummy2//b", "*", "//dummy1[b]/b"]

    @pytest.mark.parametrize("seed", [0, 3, 8, 15])
    def test_oracle_equivalence(
        self, recursive_dtd, recursive_spec, recursive_view, seed
    ):
        document = DocumentGenerator(
            recursive_dtd, seed=seed, max_depth=12
        ).generate()
        view_tree = materialize(document, recursive_view, recursive_spec)
        rewriter = Rewriter(unfold_view(recursive_view, document.height()))
        evaluator = XPathEvaluator()
        for text in self.QUERIES:
            query = parse_xpath(text)
            on_view = sorted(
                node.string_value()
                for node in evaluator.evaluate(query, view_tree)
            )
            on_document = sorted(
                node.string_value()
                for node in evaluator.evaluate(
                    rewriter.rewrite(query), document
                )
            )
            assert on_view == on_document, (text, seed)

    def test_regular_path_shape(self, recursive_view):
        # //b over the unfolded view must enumerate (a/c)*/a-style
        # prefixes up to the height bound (Section 4.2's (a/c)*/b)
        rewriter = Rewriter(unfold_view(recursive_view, 7))
        text = str(rewriter.rewrite(parse_xpath("//b")))
        assert "a/b" in text  # depth-1 occurrence
        assert "a/c/a/b" in text  # depth-2 occurrence


class TestDeepStarRecursion:
    def test_star_recursion_unfolds(self):
        dtd = parse_dtd(
            """
            <!ELEMENT catalog (assembly*)>
            <!ELEMENT assembly (part, children)>
            <!ELEMENT children (assembly*)>
            <!ELEMENT part (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd, name="flat")
        spec.annotate("assembly", "children", "N")
        spec.annotate("children", "assembly", "Y")
        view = derive(spec)
        assert view.is_recursive()
        document = DocumentGenerator(
            dtd, seed=5, max_branch=2, max_depth=9
        ).generate()
        view_tree = materialize(document, view, spec)
        rewriter = Rewriter(unfold_view(view, document.height()))
        evaluator = XPathEvaluator()
        for text in ("//part", "assembly/assembly/part"):
            query = parse_xpath(text)
            on_view = sorted(
                node.string_value()
                for node in evaluator.evaluate(query, view_tree)
            )
            on_document = sorted(
                node.string_value()
                for node in evaluator.evaluate(
                    rewriter.rewrite(query), document
                )
            )
            assert on_view == on_document, text
