"""Unit tests for the policy verification tool."""

import pytest

from repro.core.spec import AccessSpec
from repro.core.verify import verify_policy
from repro.dtd.parser import parse_dtd
from repro.workloads.hospital import hospital_dtd, nurse_spec


class TestSoundPolicies:
    def test_nurse_policy_verifies(self):
        spec = nurse_spec(hospital_dtd()).bind(wardNo="2")
        report = verify_policy(spec, trials=10)
        assert report.ok
        assert "OK" in report.summary()
        assert report.trials == 10

    def test_identity_policy_verifies(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a*)><!ELEMENT a (b | c)>"
            "<!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY>"
        )
        report = verify_policy(AccessSpec(dtd), trials=8)
        assert report.ok

    def test_pruning_policy_verifies(self):
        dtd = parse_dtd(
            "<!ELEMENT r (keep, drop)>"
            "<!ELEMENT keep (#PCDATA)><!ELEMENT drop (#PCDATA)>"
        )
        spec = AccessSpec(dtd).annotate("r", "drop", "N")
        report = verify_policy(spec, trials=8)
        assert report.ok


class TestUnsoundPolicies:
    def test_conditional_under_seq_detected(self):
        # [text() = "ok"] on a required child: aborts whenever the
        # generated text differs (Theorem 3.2's excluded case)
        dtd = parse_dtd(
            "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>"
        )
        spec = AccessSpec(dtd).annotate("r", "a", '[text() = "ok"]')
        report = verify_policy(spec, trials=10)
        assert not report.ok
        assert report.aborts
        assert "UNSOUND" in report.summary()
        assert report.warnings  # the deriver statically flagged it too

    def test_paper_literal_choice_removal_detected(self):
        from repro.core.derive import derive

        dtd = parse_dtd(
            "<!ELEMENT r (keep | gone)>"
            "<!ELEMENT keep (#PCDATA)>"
            "<!ELEMENT gone (secret)>"
            "<!ELEMENT secret (#PCDATA)>"
        )
        spec = AccessSpec(dtd).annotate("r", "gone", "N")
        literal_view = derive(spec, preserve_choice_branches=False)
        report = verify_policy(spec, trials=12, view=literal_view)
        # documents taking the 'gone' branch abort under the paper's
        # literal branch removal...
        assert report.aborts
        # ...while the default empty-dummy treatment stays sound
        assert verify_policy(spec, trials=12).ok


class TestReportObject:
    def test_repr_and_summary(self):
        spec = nurse_spec(hospital_dtd()).bind(wardNo="2")
        report = verify_policy(spec, trials=3)
        assert "VerificationReport" in repr(report)
        assert "3/3" in report.summary()
