"""Unit tests for the SecurityView structure."""

import pytest

from repro.errors import ViewDerivationError
from repro.dtd.content import EPSILON, Name, STR, Seq, Star, names
from repro.dtd.dtd import DTD
from repro.core.view import SecurityView, ViewNode
from repro.xpath.ast import EPSILON as EPS_PATH, Label


def tiny_doc_dtd():
    return DTD("r", {"r": Name("a"), "a": STR})


def build_view():
    view = SecurityView(tiny_doc_dtd(), root_key="r")
    view.add_node(ViewNode("r", "r", Seq(names("x", "y"))))
    view.add_node(ViewNode("x", "x", EPSILON, is_dummy=True))
    view.add_node(ViewNode("y", "y", Star(Name("z"))))
    view.add_node(ViewNode("z", "z", STR))
    view.set_sigma("r", "x", Label("a"))
    view.set_sigma("r", "y", Label("a"))
    view.set_sigma("y", "z", Label("a"))
    return view


class TestStructure:
    def test_children_and_labels(self):
        view = build_view()
        assert view.children_of("r") == ("x", "y")
        assert view.children_with_label("r", "y") == ["y"]
        assert view.labels() == {"r", "x", "y", "z"}

    def test_duplicate_key_rejected(self):
        view = build_view()
        with pytest.raises(ViewDerivationError):
            view.add_node(ViewNode("x", "x", EPSILON))

    def test_unknown_node_rejected(self):
        with pytest.raises(ViewDerivationError):
            build_view().node("ghost")

    def test_missing_sigma_rejected(self):
        view = build_view()
        with pytest.raises(ViewDerivationError):
            view.sigma_of("x", "z")

    def test_reachable(self):
        view = build_view()
        assert view.reachable() == {"r", "x", "y", "z"}
        assert view.reachable("y") == {"y", "z"}

    def test_size_positive(self):
        assert build_view().size() > 4


class TestRecursionChecks:
    def test_dag_view(self):
        view = build_view()
        assert not view.is_recursive()
        order = view.topological_order()
        assert order.index("r") < order.index("y") < order.index("z")

    def test_recursive_view_detected(self, recursive_view):
        assert recursive_view.is_recursive()
        with pytest.raises(ViewDerivationError):
            recursive_view.topological_order()


class TestExport:
    def test_exposed_dtd_round(self):
        view = build_view()
        exposed = view.exposed_dtd()
        assert exposed.root == "r"
        assert exposed.production("y") == Star(Name("z"))

    def test_exposed_dtd_rejects_label_conflicts(self):
        view = build_view()
        view.add_node(ViewNode("y2", "y", STR))  # same label, new content
        view.nodes["r"] = ViewNode("r", "r", Seq(names("x", "y", "y2")))
        with pytest.raises(ViewDerivationError):
            view.exposed_dtd()

    def test_describe_mentions_sigma(self):
        text = build_view().describe()
        assert "sigma(r, x) = a" in text
        assert "view DTD" in text
