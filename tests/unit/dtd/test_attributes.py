"""Unit tests for ATTLIST declarations: parsing, validation,
generation, and the constraint folds they enable."""

import pytest

from repro.dtd.attributes import FIXED, IMPLIED, REQUIRED, AttributeDecl
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import conforms, validate
from repro.errors import DTDError, DTDParseError
from repro.xmlmodel.parser import parse_document

DTD_TEXT = """
<!ELEMENT order (item*)>
<!ATTLIST order id CDATA #REQUIRED currency (usd | eur) "usd">
<!ELEMENT item (#PCDATA)>
<!ATTLIST item sku CDATA #REQUIRED
               priority (low | high) #IMPLIED
               schema CDATA #FIXED "v2">
"""


@pytest.fixture(scope="module")
def dtd():
    return parse_dtd(DTD_TEXT)


class TestParsing:
    def test_declarations_read(self, dtd):
        order = dtd.attribute_decls("order")
        assert set(order) == {"id", "currency"}
        assert order["id"].required
        assert order["currency"].choices == ("usd", "eur")
        assert order["currency"].default == "usd"

    def test_fixed(self, dtd):
        schema = dtd.attribute_decl("item", "schema")
        assert schema.fixed and schema.default == "v2"

    def test_multiple_attlists_merge(self):
        dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA)>"
            "<!ATTLIST a x CDATA #IMPLIED>"
            "<!ATTLIST a y CDATA #IMPLIED>"
        )
        assert set(dtd.attribute_decls("a")) == {"x", "y"}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd(
                "<!ELEMENT a (#PCDATA)>"
                "<!ATTLIST a x CDATA #IMPLIED x CDATA #IMPLIED>"
            )

    def test_attlist_for_unknown_element_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd(
                "<!ELEMENT a (#PCDATA)><!ATTLIST ghost x CDATA #IMPLIED>"
            )

    def test_roundtrip_through_text(self, dtd):
        assert parse_dtd(dtd.to_dtd_text()) == dtd

    def test_numeric_enum_tokens(self):
        dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA)><!ATTLIST a w (1y | 2y) #IMPLIED>"
        )
        assert dtd.attribute_decl("a", "w").choices == ("1y", "2y")


class TestValidation:
    def test_valid_document(self, dtd):
        document = parse_document(
            '<order id="1"><item sku="a" priority="low">x</item></order>'
        )
        assert conforms(document, dtd)

    def test_missing_required(self, dtd):
        document = parse_document('<order><item sku="a">x</item></order>')
        issues = validate(document, dtd)
        assert any("missing required attribute 'id'" in str(i) for i in issues)

    def test_undeclared_attribute(self, dtd):
        document = parse_document('<order id="1" rogue="x"/>')
        issues = validate(document, dtd)
        assert any("undeclared attribute 'rogue'" in str(i) for i in issues)

    def test_illegal_enum_value(self, dtd):
        document = parse_document('<order id="1" currency="gbp"/>')
        assert not conforms(document, dtd)

    def test_fixed_violation(self, dtd):
        document = parse_document(
            '<order id="1"><item sku="a" schema="v1">x</item></order>'
        )
        assert not conforms(document, dtd)

    def test_lax_elements_accept_anything(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA)>")
        document = parse_document('<a anything="goes">x</a>')
        assert conforms(document, dtd)


class TestGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_attributes_conform(self, dtd, seed):
        document = DocumentGenerator(dtd, seed=seed, max_branch=4).generate()
        assert conforms(document, dtd)
        assert document.get("id") is not None  # required always present

    def test_enumerated_values_respected(self, dtd):
        document = DocumentGenerator(dtd, seed=1, max_branch=6).generate()
        for item in document.find_all("item"):
            priority = item.get("priority")
            assert priority in (None, "low", "high")
            assert item.get("schema") == "v2"

    def test_value_pools_for_attributes(self, dtd):
        generator = DocumentGenerator(
            dtd,
            seed=2,
            max_branch=5,
            value_pools={"item@sku": ["S1", "S2"]},
        )
        document = generator.generate()
        skus = {item.get("sku") for item in document.find_all("item")}
        assert skus <= {"S1", "S2"}


class TestDeclObject:
    def test_allows(self):
        enum = AttributeDecl("x", choices=("a", "b"))
        assert enum.allows("a") and not enum.allows("c")
        fixed = AttributeDecl("x", default_kind=FIXED, default="v")
        assert fixed.allows("v") and not fixed.allows("w")

    def test_syntax(self):
        assert (
            AttributeDecl("x", default_kind=REQUIRED).to_dtd_syntax()
            == "x CDATA #REQUIRED"
        )
        assert (
            AttributeDecl("x", default_kind=IMPLIED).to_dtd_syntax()
            == "x CDATA #IMPLIED"
        )
        assert 'x CDATA #FIXED "v"' == AttributeDecl(
            "x", default_kind=FIXED, default="v"
        ).to_dtd_syntax()

    def test_equality(self):
        assert AttributeDecl("x") == AttributeDecl("x")
        assert AttributeDecl("x") != AttributeDecl("y")


class TestConstraintFolds:
    def test_required_attribute_qualifier_true(self, dtd):
        from repro.core.optimize import Optimizer
        from repro.xpath.parser import parse_xpath

        optimizer = Optimizer(dtd)
        assert str(optimizer.optimize(parse_xpath("item[@sku]"))) == "item"

    def test_undeclared_attribute_qualifier_false(self, dtd):
        from repro.core.optimize import Optimizer
        from repro.xpath.parser import parse_xpath

        optimizer = Optimizer(dtd)
        assert str(optimizer.optimize(parse_xpath("item[@rogue]"))) == "0"

    def test_implied_attribute_kept(self, dtd):
        from repro.core.optimize import Optimizer
        from repro.xpath.parser import parse_xpath

        optimizer = Optimizer(dtd)
        result = str(optimizer.optimize(parse_xpath("item[@priority]")))
        assert result == "item[@priority]"

    def test_illegal_enum_equality_false(self, dtd):
        from repro.core.optimize import Optimizer
        from repro.xpath.parser import parse_xpath

        optimizer = Optimizer(dtd)
        result = optimizer.optimize(parse_xpath('item[@priority = "urgent"]'))
        assert result.is_empty

    def test_lax_element_attribute_unknown(self):
        from repro.core.constraints import attribute_exists_bool

        dtd = parse_dtd("<!ELEMENT a (#PCDATA)>")
        assert attribute_exists_bool(dtd, "a", "x") is None
