"""Unit tests for DTD content models (regular expressions over child
sequences) and their Brzozowski-derivative machinery."""

import pytest

from repro.dtd.content import (
    Choice,
    EPSILON,
    EMPTY_SET,
    Epsilon,
    Name,
    Opt,
    Plus,
    STR,
    Seq,
    Star,
    Str,
    TEXT_SYMBOL,
    alternation,
    concat,
    names,
    seq,
)


def matches(content, word):
    current = content
    for symbol in word:
        current = current.derivative(symbol)
    return current.nullable()


class TestNormalForm:
    def test_shapes(self):
        assert STR.is_normal_form()
        assert EPSILON.is_normal_form()
        assert Seq(names("a", "b")).is_normal_form()
        assert Choice(names("a", "b")).is_normal_form()
        assert Star(Name("a")).is_normal_form()

    def test_non_normal_shapes(self):
        assert not Seq([Name("a"), Star(Name("b"))]).is_normal_form()
        assert not Star(Seq(names("a", "b"))).is_normal_form()
        assert not Opt(Name("a")).is_normal_form()
        assert not Plus(Name("a")).is_normal_form()


class TestLanguageMembership:
    def test_epsilon_accepts_only_empty(self):
        assert matches(EPSILON, [])
        assert not matches(EPSILON, ["a"])

    def test_str_accepts_text_runs(self):
        assert matches(STR, [])
        assert matches(STR, [TEXT_SYMBOL])
        assert matches(STR, [TEXT_SYMBOL, TEXT_SYMBOL])
        assert not matches(STR, ["a"])

    def test_name(self):
        assert matches(Name("a"), ["a"])
        assert not matches(Name("a"), [])
        assert not matches(Name("a"), ["a", "a"])

    def test_seq(self):
        content = Seq(names("a", "b", "c"))
        assert matches(content, ["a", "b", "c"])
        assert not matches(content, ["a", "c", "b"])
        assert not matches(content, ["a", "b"])

    def test_choice(self):
        content = Choice(names("a", "b"))
        assert matches(content, ["a"])
        assert matches(content, ["b"])
        assert not matches(content, ["a", "b"])
        assert not matches(content, [])

    def test_star(self):
        content = Star(Name("a"))
        assert matches(content, [])
        assert matches(content, ["a"] * 5)
        assert not matches(content, ["a", "b"])

    def test_opt(self):
        content = Opt(Name("a"))
        assert matches(content, [])
        assert matches(content, ["a"])
        assert not matches(content, ["a", "a"])

    def test_plus(self):
        content = Plus(Name("a"))
        assert not matches(content, [])
        assert matches(content, ["a"])
        assert matches(content, ["a", "a", "a"])

    def test_nested_group(self):
        # (a, (b | c)*, d)
        content = Seq(
            [Name("a"), Star(Choice(names("b", "c"))), Name("d")]
        )
        assert matches(content, ["a", "d"])
        assert matches(content, ["a", "b", "c", "b", "d"])
        assert not matches(content, ["a", "b", "c"])

    def test_nullable_seq_head(self):
        # (a*, b): b may come first
        content = Seq([Star(Name("a")), Name("b")])
        assert matches(content, ["b"])
        assert matches(content, ["a", "a", "b"])
        assert not matches(content, ["a"])


class TestFirstSymbols:
    def test_seq_stops_at_required(self):
        content = Seq([Star(Name("a")), Name("b"), Name("c")])
        assert content.first_symbols() == {"a", "b"}

    def test_choice_unions(self):
        assert Choice(names("a", "b")).first_symbols() == {"a", "b"}

    def test_epsilon_empty(self):
        assert EPSILON.first_symbols() == frozenset()


class TestSmartConstructors:
    def test_seq_flattens(self):
        nested = seq([Name("a"), seq([Name("b"), Name("c")])])
        assert nested == Seq(names("a", "b", "c"))

    def test_seq_drops_epsilon(self):
        assert seq([EPSILON, Name("a"), EPSILON]) == Name("a")

    def test_seq_of_nothing_is_epsilon(self):
        assert seq([]) == EPSILON

    def test_concat_with_empty_set_is_empty_set(self):
        assert concat(Name("a"), EMPTY_SET) is EMPTY_SET

    def test_alternation_dedups(self):
        result = alternation([Name("a"), Name("a"), Name("b")])
        assert result == Choice(names("a", "b"))

    def test_alternation_of_nothing(self):
        assert alternation([]) is EMPTY_SET

    def test_alternation_single(self):
        assert alternation([Name("a")]) == Name("a")


class TestStructural:
    def test_equality_and_hash(self):
        assert Seq(names("a", "b")) == Seq(names("a", "b"))
        assert hash(Star(Name("x"))) == hash(Star(Name("x")))
        assert Seq(names("a", "b")) != Choice(names("a", "b"))

    def test_child_names_with_duplicates(self):
        content = Seq(names("a", "b", "a"))
        assert content.child_names() == ("a", "b", "a")

    def test_size(self):
        assert Name("a").size() == 1
        assert Seq(names("a", "b")).size() == 3
        assert Star(Choice(names("a", "b"))).size() == 4

    def test_mentions_text(self):
        assert STR.mentions_text()
        assert Seq([Name("a")]).mentions_text() is False

    def test_dtd_syntax(self):
        assert Seq(names("a", "b")).to_dtd_syntax() == "(a, b)"
        assert Choice(names("a", "b")).to_dtd_syntax() == "(a | b)"
        assert Star(Name("a")).to_dtd_syntax() == "a*"
        assert Opt(Name("a")).to_dtd_syntax() == "a?"
        assert Plus(Name("a")).to_dtd_syntax() == "a+"
        assert STR.to_dtd_syntax() == "(#PCDATA)"
        assert EPSILON.to_dtd_syntax() == "EMPTY"

    def test_seq_requires_items(self):
        with pytest.raises(ValueError):
            Seq([])
        with pytest.raises(ValueError):
            Choice([])
