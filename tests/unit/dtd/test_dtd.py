"""Unit tests for the DTD class and its graph structure."""

import math

import pytest

from repro.errors import DTDError
from repro.dtd.content import Choice, EPSILON, Name, STR, Seq, Star, names
from repro.dtd.dtd import DTD
from repro.dtd.parser import parse_dtd


def simple_dtd():
    return DTD(
        "r",
        {
            "r": Seq(names("a", "b")),
            "a": Star(Name("c")),
            "b": Choice(names("c", "d")),
            "c": STR,
            "d": EPSILON,
        },
    )


class TestConstruction:
    def test_unknown_root_rejected(self):
        with pytest.raises(DTDError):
            DTD("missing", {"a": STR})

    def test_undeclared_reference_rejected(self):
        with pytest.raises(DTDError) as info:
            DTD("r", {"r": Name("ghost")})
        assert "ghost" in str(info.value)

    def test_element_types(self):
        assert set(simple_dtd().element_types) == {"r", "a", "b", "c", "d"}

    def test_production_lookup(self):
        dtd = simple_dtd()
        assert dtd.production("a") == Star(Name("c"))
        with pytest.raises(DTDError):
            dtd.production("nope")


class TestGraph:
    def test_children_of_ordered_dedup(self):
        dtd = DTD("r", {"r": Seq(names("a", "b", "a")), "a": STR, "b": STR})
        assert dtd.children_of("r") == ("a", "b")

    def test_is_child(self):
        dtd = simple_dtd()
        assert dtd.is_child("r", "a")
        assert not dtd.is_child("a", "b")

    def test_parents_of(self):
        dtd = simple_dtd()
        assert sorted(dtd.parents_of("c")) == ["a", "b"]

    def test_edges_carry_kind(self):
        kinds = {
            (parent, child): kind for parent, child, kind in simple_dtd().edges()
        }
        assert kinds[("r", "a")] == "seq"
        assert kinds[("a", "c")] == "star"
        assert kinds[("b", "c")] == "choice"

    def test_reachable(self):
        dtd = simple_dtd()
        assert dtd.reachable() == {"r", "a", "b", "c", "d"}
        assert dtd.reachable("a") == {"a", "c"}

    def test_unreachable_types_allowed(self):
        dtd = DTD("r", {"r": STR, "island": STR})
        assert dtd.reachable() == {"r"}


class TestProductionKinds:
    def test_kinds(self):
        dtd = simple_dtd()
        assert dtd.production_kind("r") == "seq"
        assert dtd.production_kind("a") == "star"
        assert dtd.production_kind("b") == "choice"
        assert dtd.production_kind("c") == "str"
        assert dtd.production_kind("d") == "epsilon"

    def test_single_name_is_seq(self):
        dtd = DTD("r", {"r": Name("a"), "a": STR})
        assert dtd.production_kind("r") == "seq"

    def test_mixed_kind(self):
        dtd = DTD("r", {"r": Seq([Name("a"), Star(Name("a"))]), "a": STR})
        assert dtd.production_kind("r") == "mixed"
        assert not dtd.is_normal_form()

    def test_normal_form(self):
        assert simple_dtd().is_normal_form()


class TestRecursion:
    def test_acyclic(self):
        dtd = simple_dtd()
        assert not dtd.is_recursive()
        assert dtd.recursive_types() == set()

    def test_self_loop(self):
        dtd = DTD("r", {"r": Choice(names("r", "x")), "x": STR})
        assert dtd.recursive_types() == {"r"}

    def test_indirect_cycle(self):
        dtd = parse_dtd(
            """
            <!ELEMENT r (a)>
            <!ELEMENT a (b | leaf)>
            <!ELEMENT b (a)>
            <!ELEMENT leaf (#PCDATA)>
            """
        )
        assert dtd.recursive_types() == {"a", "b"}

    def test_topological_order(self):
        dtd = simple_dtd()
        order = dtd.topological_order()
        assert order.index("r") < order.index("a") < order.index("c")
        assert order.index("b") < order.index("d")

    def test_topological_order_rejects_cycles(self):
        dtd = DTD("r", {"r": Name("r")})
        with pytest.raises(DTDError):
            dtd.topological_order()


class TestConsistency:
    def test_min_heights(self):
        heights = simple_dtd().min_heights()
        assert heights["c"] == 1
        assert heights["a"] == 1  # star may be empty
        assert heights["b"] == 2
        assert heights["r"] == 3

    def test_recursive_with_escape_is_consistent(self):
        dtd = parse_dtd(
            """
            <!ELEMENT a (b | c)>
            <!ELEMENT c (a)>
            <!ELEMENT b (#PCDATA)>
            """
        )
        assert dtd.is_consistent()
        assert dtd.min_heights()["a"] == 2

    def test_inconsistent_dtd(self):
        dtd = DTD("r", {"r": Name("r")})
        assert not dtd.is_consistent()
        assert dtd.inconsistent_types() == {"r"}
        assert dtd.min_heights()["r"] == math.inf


class TestMisc:
    def test_size(self):
        dtd = DTD("r", {"r": Name("a"), "a": STR})
        assert dtd.size() == 2 + 1 + 1  # 2 types + Name(1) + Str(1)

    def test_to_dtd_text_roundtrip(self):
        dtd = simple_dtd()
        again = parse_dtd(dtd.to_dtd_text())
        assert again == dtd

    def test_root_listed_first_in_text(self):
        assert simple_dtd().to_dtd_text().startswith("<!ELEMENT r ")

    def test_equality(self):
        assert simple_dtd() == simple_dtd()
        assert simple_dtd() != DTD("r", {"r": STR})
