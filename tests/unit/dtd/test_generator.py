"""Unit tests for the random document generator (the IBM XML Generator
substitute)."""

import pytest

from repro.errors import DTDError
from repro.dtd.dtd import DTD
from repro.dtd.content import Name
from repro.dtd.generator import DocumentGenerator, generate_document
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import conforms

DTD_TEXT = """
<!ELEMENT site (shop*)>
<!ELEMENT shop (name, stock)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT stock (item*)>
<!ELEMENT item (sku, (new | used))>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT new EMPTY>
<!ELEMENT used (grade)>
<!ELEMENT grade (#PCDATA)>
"""


@pytest.fixture(scope="module")
def dtd():
    return parse_dtd(DTD_TEXT)


class TestConformance:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_documents_conform(self, dtd, seed):
        tree = generate_document(dtd, seed=seed, max_branch=4)
        assert conforms(tree, dtd)

    def test_recursive_dtd_conforms_and_terminates(self):
        dtd = parse_dtd(
            """
            <!ELEMENT a (b | c)>
            <!ELEMENT c (a, a)>
            <!ELEMENT b (#PCDATA)>
            """
        )
        for seed in range(8):
            tree = generate_document(dtd, seed=seed, max_depth=9)
            assert conforms(tree, dtd)
            assert tree.height() <= 9


class TestDeterminism:
    def test_same_seed_same_document(self, dtd):
        first = generate_document(dtd, seed=5)
        second = generate_document(dtd, seed=5)
        assert first.structurally_equal(second)

    def test_different_seeds_differ(self, dtd):
        trees = [generate_document(dtd, seed=s, max_branch=4) for s in range(6)]
        sizes = {tree.size() for tree in trees}
        assert len(sizes) > 1


class TestKnobs:
    def test_max_branch_grows_documents(self, dtd):
        small = sum(
            generate_document(dtd, seed=s, max_branch=1).size()
            for s in range(6)
        )
        large = sum(
            generate_document(dtd, seed=s, max_branch=8).size()
            for s in range(6)
        )
        assert large > small

    def test_max_depth_enforced(self, dtd):
        for seed in range(6):
            tree = generate_document(dtd, seed=seed, max_depth=4)
            assert tree.height() <= 4

    def test_max_depth_below_min_height_rejected(self, dtd):
        with pytest.raises(DTDError):
            DocumentGenerator(dtd, max_depth=0)

    def test_value_pools(self, dtd):
        generator = DocumentGenerator(
            dtd, seed=0, max_branch=4, value_pools={"sku": ["A", "B"]}
        )
        tree = generator.generate()
        skus = {node.string_value() for node in tree.find_all("sku")}
        assert skus <= {"A", "B"}

    def test_generate_many(self, dtd):
        generator = DocumentGenerator(dtd, seed=1)
        trees = generator.generate_many(3)
        assert len(trees) == 3


class TestErrors:
    def test_inconsistent_dtd_rejected(self):
        dtd = DTD("r", {"r": Name("r")})
        with pytest.raises(DTDError) as info:
            DocumentGenerator(dtd)
        assert "inconsistent" in str(info.value)
