"""Input-hardening tests for :func:`repro.dtd.parser.parse_dtd`."""

import pytest

from repro.errors import DTDLimitError, DTDParseError, error_code
from repro.dtd.parser import parse_dtd

SIMPLE = "<!ELEMENT a (b*)>\n<!ELEMENT b EMPTY>\n"


def nested_model(depth: int) -> str:
    """``<!ELEMENT a (((...(b)...)))>`` with ``depth`` nested groups."""
    return "<!ELEMENT a %sb%s>\n<!ELEMENT b EMPTY>\n" % (
        "(" * depth, ")" * depth
    )


class TestMaxBytes:
    def test_within_limit(self):
        dtd = parse_dtd(SIMPLE, max_bytes=len(SIMPLE))
        assert dtd.root == "a"

    def test_over_limit(self):
        with pytest.raises(DTDLimitError) as excinfo:
            parse_dtd(SIMPLE, max_bytes=10)
        error = excinfo.value
        assert error_code(error) == "E_PARSE_DTD_LIMIT"
        assert "limit is 10" in str(error)

    def test_limit_error_is_a_parse_error(self):
        with pytest.raises(DTDParseError):
            parse_dtd(SIMPLE, max_bytes=10)


class TestMaxDepth:
    def test_at_the_limit(self):
        dtd = parse_dtd(nested_model(4), max_depth=4)
        assert dtd.root == "a"

    def test_over_the_limit(self):
        with pytest.raises(DTDLimitError) as excinfo:
            parse_dtd(nested_model(5), max_depth=4)
        assert "depth limit (4)" in str(excinfo.value)

    def test_group_bomb_rejected(self):
        # 50k nested groups would overflow the recursive-descent stack
        # without the guard; the limit trips long before that.
        with pytest.raises(DTDLimitError):
            parse_dtd(nested_model(50_000), max_depth=64)

    def test_sibling_groups_do_not_accumulate(self):
        text = "<!ELEMENT a ((b), (b), (b))>\n<!ELEMENT b EMPTY>\n"
        parse_dtd(text, max_depth=2)


class TestMaxAttributes:
    def test_at_the_limit(self):
        text = SIMPLE + "<!ATTLIST a x CDATA #IMPLIED y CDATA #IMPLIED>\n"
        dtd = parse_dtd(text, max_attributes=2)
        assert set(dtd.attlists["a"]) == {"x", "y"}

    def test_over_the_limit(self):
        text = SIMPLE + (
            "<!ATTLIST a x CDATA #IMPLIED y CDATA #IMPLIED z CDATA #IMPLIED>\n"
        )
        with pytest.raises(DTDLimitError) as excinfo:
            parse_dtd(text, max_attributes=2)
        assert "more than 2 attributes" in str(excinfo.value)

    def test_merged_attlists_counted_together(self):
        text = SIMPLE + (
            "<!ATTLIST a x CDATA #IMPLIED>\n"
            "<!ATTLIST a y CDATA #IMPLIED>\n"
        )
        with pytest.raises(DTDLimitError):
            parse_dtd(text, max_attributes=1)


class TestLimitValidation:
    @pytest.mark.parametrize("field", ["max_bytes", "max_depth", "max_attributes"])
    @pytest.mark.parametrize("value", [0, -3, 2.5, "8", True])
    def test_bad_limit_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            parse_dtd(SIMPLE, **{field: value})

    def test_none_means_unlimited(self):
        # The content-model grammar is recursive-descent, so "no limit"
        # only has to cover depths a sane DTD reaches; max_depth exists
        # to reject adversarial group bombs before the interpreter does.
        parse_dtd(nested_model(100))
