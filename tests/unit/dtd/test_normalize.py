"""Unit tests for DTD normalization into the paper's normal form."""

from repro.dtd.content import Choice, EPSILON, Name, Opt, Plus, STR, Seq, Star, names
from repro.dtd.dtd import DTD
from repro.dtd.normalize import SYNTHETIC_PREFIX, normalize_dtd
from repro.dtd.parser import parse_dtd


class TestAlreadyNormal:
    def test_identity(self):
        dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>")
        normalized, synthetic = normalize_dtd(dtd)
        assert normalized is dtd
        assert synthetic == {}


class TestRewrites:
    def test_star_in_seq(self):
        dtd = DTD("r", {"r": Seq([Name("a"), Star(Name("b"))]), "a": STR, "b": STR})
        normalized, synthetic = normalize_dtd(dtd)
        assert normalized.is_normal_form()
        (wrapper,) = synthetic
        assert normalized.production(wrapper) == Star(Name("b"))
        assert normalized.production("r") == Seq([Name("a"), Name(wrapper)])

    def test_opt_becomes_choice_with_empty(self):
        dtd = DTD("r", {"r": Opt(Name("a")), "a": STR})
        normalized, synthetic = normalize_dtd(dtd)
        assert normalized.is_normal_form()
        production = normalized.production("r")
        assert isinstance(production, Choice)
        empty_types = [
            name
            for name, content in synthetic.items()
            if content == EPSILON
        ]
        assert len(empty_types) == 1

    def test_plus_becomes_seq_with_star(self):
        dtd = DTD("r", {"r": Plus(Name("a")), "a": STR})
        normalized, synthetic = normalize_dtd(dtd)
        assert normalized.is_normal_form()
        production = normalized.production("r")
        assert isinstance(production, Seq)
        assert production.items[0] == Name("a")
        star_type = production.items[1].name
        assert normalized.production(star_type) == Star(Name("a"))

    def test_nested_group(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a, (b | c), d)>"
            "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
            "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        normalized, synthetic = normalize_dtd(dtd)
        assert normalized.is_normal_form()
        (wrapper,) = synthetic
        assert normalized.production(wrapper) == Choice(names("b", "c"))

    def test_deeply_nested(self):
        dtd = parse_dtd(
            "<!ELEMENT r ((a, b?)*, c+)>"
            "<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        )
        normalized, _ = normalize_dtd(dtd)
        assert normalized.is_normal_form()
        assert normalized.root == "r"

    def test_duplicate_subexpressions_share_types(self):
        dtd = parse_dtd(
            "<!ELEMENT r ((a | b), (a | b))>"
            "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
        )
        normalized, synthetic = normalize_dtd(dtd)
        assert len(synthetic) == 1

    def test_synthetic_names_avoid_collisions(self):
        dtd = DTD(
            "r",
            {
                "r": Seq([Star(Name("a")), Name(SYNTHETIC_PREFIX + "grp1")]),
                "a": STR,
                SYNTHETIC_PREFIX + "grp1": STR,
            },
        )
        normalized, synthetic = normalize_dtd(dtd)
        assert normalized.is_normal_form()
        assert all(name not in dtd.productions for name in synthetic)


class TestSemanticsPreserved:
    def test_language_equivalence_samples(self):
        from repro.dtd.generator import DocumentGenerator
        from repro.dtd.validate import conforms

        dtd = parse_dtd(
            "<!ELEMENT r (a?, (b | c)+, d*)>"
            "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
            "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        normalized, _ = normalize_dtd(dtd)
        # instances of the normalized DTD are generable and conform
        for seed in range(5):
            tree = DocumentGenerator(normalized, seed=seed).generate()
            assert conforms(tree, normalized)
