"""Unit tests for the DTD declaration parser."""

import pytest

from repro.errors import DTDParseError
from repro.dtd.content import (
    Choice,
    EPSILON,
    Name,
    Opt,
    Plus,
    STR,
    Seq,
    Star,
    names,
)
from repro.dtd.parser import parse_content_model, parse_dtd


class TestContentModels:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("EMPTY", EPSILON),
            ("(#PCDATA)", STR),
            ("(a)", Name("a")),
            ("(a, b)", Seq(names("a", "b"))),
            ("(a | b | c)", Choice(names("a", "b", "c"))),
            ("(a)*", Star(Name("a"))),
            ("(a, b*)", Seq([Name("a"), Star(Name("b"))])),
            ("(a?, b+)", Seq([Opt(Name("a")), Plus(Name("b"))])),
            ("((a | b), c)", Seq([Choice(names("a", "b")), Name("c")])),
            ("(a, (b, c)*)", Seq([Name("a"), Star(Seq(names("b", "c")))])),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_content_model(text) == expected

    def test_whitespace_tolerant(self):
        assert parse_content_model(" ( a ,\n b ) ") == Seq(names("a", "b"))

    def test_mixed_separators_rejected(self):
        with pytest.raises(DTDParseError):
            parse_content_model("(a, b | c)")

    def test_any_rejected(self):
        with pytest.raises(DTDParseError):
            parse_content_model("ANY")

    def test_mixed_content_rejected(self):
        with pytest.raises(DTDParseError):
            parse_content_model("(#PCDATA | a)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DTDParseError):
            parse_content_model("(a) x")


class TestDeclarations:
    def test_first_element_is_root(self):
        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        assert dtd.root == "r"

    def test_explicit_root(self):
        dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA)><!ELEMENT r (a)>", root="r"
        )
        assert dtd.root == "r"

    def test_comments_and_attlists_skipped(self):
        dtd = parse_dtd(
            """
            <!-- a catalog -->
            <!ELEMENT r (a*)>
            <!ATTLIST r version CDATA #IMPLIED>
            <!ELEMENT a (#PCDATA)>
            """
        )
        assert set(dtd.element_types) == {"r", "a"}

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("<!ELEMENT a (#PCDATA)><!ELEMENT a EMPTY>")

    def test_empty_input_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("   ")

    def test_names_with_dots_and_dashes(self):
        dtd = parse_dtd(
            "<!ELEMENT re (r-e.warranty)><!ELEMENT r-e.warranty (#PCDATA)>"
        )
        assert dtd.is_child("re", "r-e.warranty")

    def test_hospital_dtd_parses(self):
        from repro.workloads.hospital import HOSPITAL_DTD_TEXT

        dtd = parse_dtd(HOSPITAL_DTD_TEXT)
        assert dtd.root == "hospital"
        assert dtd.is_normal_form()
        assert dtd.production_kind("treatment") == "choice"

    def test_adex_dtd_parses(self):
        from repro.workloads.adex import ADEX_DTD_TEXT

        dtd = parse_dtd(ADEX_DTD_TEXT)
        assert dtd.root == "adex"
        assert dtd.is_normal_form()
        assert not dtd.is_recursive()
