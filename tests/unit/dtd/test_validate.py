"""Unit tests for document-vs-DTD validation."""

import pytest

from repro.errors import DTDValidationError
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import assert_conforms, conforms, validate
from repro.xmlmodel.parser import parse_document

DTD_TEXT = """
<!ELEMENT library (shelf*)>
<!ELEMENT shelf (book+)>
<!ELEMENT book (title, year?, (hardcover | paperback))>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT hardcover EMPTY>
<!ELEMENT paperback EMPTY>
"""


@pytest.fixture(scope="module")
def dtd():
    return parse_dtd(DTD_TEXT)


def doc(text):
    return parse_document(text)


class TestConformance:
    def test_valid_document(self, dtd):
        tree = doc(
            "<library><shelf>"
            "<book><title>t</title><year>1999</year><hardcover/></book>"
            "<book><title>u</title><paperback/></book>"
            "</shelf></library>"
        )
        assert conforms(tree, dtd)
        assert validate(tree, dtd) == []

    def test_empty_star_ok(self, dtd):
        assert conforms(doc("<library/>"), dtd)

    def test_plus_requires_one(self, dtd):
        issues = validate(doc("<library><shelf/></library>"), dtd)
        assert len(issues) == 1
        assert "ended early" in issues[0].message

    def test_wrong_root(self, dtd):
        issues = validate(doc("<shelf/>"), dtd)
        assert any("root" in issue.message for issue in issues)

    def test_wrong_order(self, dtd):
        tree = doc(
            "<library><shelf><book>"
            "<year>1999</year><title>t</title><hardcover/>"
            "</book></shelf></library>"
        )
        issues = validate(tree, dtd)
        assert issues and "unexpected child 'year'" in issues[0].message

    def test_exclusive_choice(self, dtd):
        tree = doc(
            "<library><shelf><book>"
            "<title>t</title><hardcover/><paperback/>"
            "</book></shelf></library>"
        )
        assert not conforms(tree, dtd)

    def test_undeclared_element(self, dtd):
        tree = doc("<library><mystery/></library>")
        issues = validate(tree, dtd)
        assert any("undeclared" in issue.message for issue in issues)

    def test_unexpected_text(self, dtd):
        tree = parse_document(
            "<library><shelf>words<book><title>t</title>"
            "<hardcover/></book></shelf></library>"
        )
        issues = validate(tree, dtd)
        assert issues and "#PCDATA" in issues[0].message

    def test_issue_paths_are_indexed(self, dtd):
        tree = doc(
            "<library><shelf><book><title>t</title><hardcover/></book>"
            "<book><title>u</title></book></shelf></library>"
        )
        issues = validate(tree, dtd)
        assert issues[0].path == "/library/shelf[1]/book[2]"

    def test_max_issues_cap(self, dtd):
        tree = doc("<library>" + "<oops/>" * 20 + "</library>")
        assert len(validate(tree, dtd, max_issues=5)) == 5

    def test_assert_conforms_raises_with_details(self, dtd):
        with pytest.raises(DTDValidationError) as info:
            assert_conforms(doc("<library><bad/></library>"), dtd)
        assert "bad" in str(info.value)

    def test_assert_conforms_passes_silently(self, dtd):
        assert_conforms(doc("<library/>"), dtd)


class TestTextContent:
    def test_pcdata_accepts_empty_element(self, dtd):
        tree = doc(
            "<library><shelf><book><title></title><hardcover/>"
            "</book></shelf></library>"
        )
        assert conforms(tree, dtd)

    def test_element_child_under_pcdata_rejected(self, dtd):
        tree = doc(
            "<library><shelf><book><title><b/></title><hardcover/>"
            "</book></shelf></library>"
        )
        assert not conforms(tree, dtd)
