"""AuditLog filtering, tailing, and per-policy accounting."""

import pytest

from repro.obs.audit import AuditLog, percentile
from repro.obs.events import (
    CanaryEvent,
    DenialEvent,
    ErrorEvent,
    JsonlFileSink,
    PolicyEvent,
    QueryEvent,
    RingBufferSink,
)


def query_event(policy, latency, timestamp, cache_hit=False, slow=False):
    return QueryEvent(
        policy=policy,
        query="//patient/name",
        rewritten="/hospital//name",
        latency_seconds=latency,
        cache_hit=cache_hit,
        slow=slow,
        timestamp=timestamp,
    )


@pytest.fixture
def log():
    return AuditLog(
        [
            PolicyEvent("register", "nurse", timestamp=1.0),
            query_event("nurse", 0.010, 2.0, cache_hit=False),
            query_event("nurse", 0.002, 3.0, cache_hit=True),
            query_event("doctor", 0.100, 4.0, slow=True),
            DenialEvent("nurse", "//trial", "trial", timestamp=5.0),
            ErrorEvent("", "//a[", "E_PARSE_XPATH", "bad", timestamp=6.0),
            CanaryEvent(
                policy="nurse", query="//name", violations=0, timestamp=7.0
            ),
            CanaryEvent(
                policy="doctor",
                query="//name",
                missing=1,
                extra=2,
                violations=3,
                ok=False,
                timestamp=8.0,
            ),
        ]
    )


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.95) == 7.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.95) == 10.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 10.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0


class TestFiltering:
    def test_by_kind(self, log):
        assert len(log.events(kind="query")) == 3
        assert len(log.events(kind="canary")) == 2

    def test_by_policy(self, log):
        kinds = [event.kind for event in log.events(policy="nurse")]
        assert kinds == ["policy", "query", "query", "denial", "canary"]

    def test_time_window_since_inclusive_until_exclusive(self, log):
        window = log.events(since=2.0, until=5.0)
        assert [event.timestamp for event in window] == [2.0, 3.0, 4.0]

    def test_combined(self, log):
        assert len(log.events(kind="query", policy="doctor")) == 1

    def test_tail(self, log):
        latest = log.tail(count=2)
        assert [event.timestamp for event in latest] == [7.0, 8.0]
        assert len(log.tail(count=100)) == len(log)
        assert [e.kind for e in log.tail(count=1, kind="query")] == ["query"]

    def test_policies(self, log):
        assert log.policies() == ["doctor", "nurse"]

    def test_len_and_iter(self, log):
        assert len(log) == 8
        assert len(list(log)) == 8


class TestStats:
    def test_per_policy_buckets(self, log):
        stats = log.stats()
        assert set(stats) == {"nurse", "doctor", "-"}

        nurse = stats["nurse"]
        assert nurse["queries"] == 2
        assert nurse["cache_hits"] == 1
        assert nurse["slow"] == 0
        assert nurse["denials"] == 1
        assert nurse["errors"] == 0
        assert nurse["canary_checks"] == 1
        assert nurse["canary_violations"] == 0
        assert nurse["latency"]["count"] == 2
        assert nurse["latency"]["mean"] == pytest.approx(0.006)
        assert nurse["latency"]["max"] == 0.010

        doctor = stats["doctor"]
        assert doctor["queries"] == 1
        assert doctor["slow"] == 1
        assert doctor["canary_violations"] == 3
        assert doctor["latency"]["p50"] == 0.100
        assert doctor["latency"]["p95"] == 0.100

    def test_policyless_events_bucket_under_dash(self, log):
        assert log.stats()["-"]["errors"] == 1

    def test_single_policy_filter(self, log):
        stats = log.stats(policy="doctor")
        assert set(stats) == {"doctor"}

    def test_empty_log(self):
        assert AuditLog().stats() == {}


class TestConstruction:
    def test_from_sink(self):
        sink = RingBufferSink(capacity=4)
        sink.emit(query_event("nurse", 0.001, 1.0))
        log = AuditLog.from_sink(sink)
        assert len(log) == 1 and log.stats()["nurse"]["queries"] == 1

    def test_from_jsonl_round_trip(self, tmp_path, log):
        path = tmp_path / "audit.jsonl"
        with JsonlFileSink(path) as sink:
            for event in log:
                sink.emit(event)
        reloaded = AuditLog.from_jsonl(path)
        assert len(reloaded) == len(log)
        assert reloaded.stats() == log.stats()

    def test_add(self):
        log = AuditLog()
        log.add(query_event("nurse", 0.001, 1.0))
        assert len(log) == 1
