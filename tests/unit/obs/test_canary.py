"""SecurityCanary sampling determinism and oracle comparison."""

import pytest

from repro.obs.canary import SecurityCanary, compare_answers, oracle_answers
from repro.xmlmodel import parse_document, serialize

VIEW_XML = (
    "<ward><patient><name>Ann</name></patient>"
    "<patient><name>Bob</name></patient></ward>"
)


@pytest.fixture
def view_tree():
    return parse_document(VIEW_XML)


class TestSampling:
    def test_rate_validation(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError):
                SecurityCanary(sample_rate=bad)

    def test_rate_one_always_samples(self):
        canary = SecurityCanary(sample_rate=1.0)
        assert all(canary.should_sample() for _ in range(50))

    def test_rate_zero_never_samples(self):
        canary = SecurityCanary(sample_rate=0.0)
        assert not any(canary.should_sample() for _ in range(50))

    def test_seeded_schedule_is_deterministic(self):
        first = SecurityCanary(sample_rate=0.3, seed=42)
        second = SecurityCanary(sample_rate=0.3, seed=42)
        schedule = [first.should_sample() for _ in range(200)]
        assert schedule == [second.should_sample() for _ in range(200)]
        # and the rate is roughly honoured
        assert 30 <= sum(schedule) <= 90

    def test_different_seeds_differ(self):
        first = SecurityCanary(sample_rate=0.5, seed=1)
        second = SecurityCanary(sample_rate=0.5, seed=2)
        assert [first.should_sample() for _ in range(100)] != [
            second.should_sample() for _ in range(100)
        ]

    def test_extreme_rates_never_touch_rng(self):
        canary = SecurityCanary(sample_rate=1.0, seed=7)
        state = canary._rng.getstate()
        for _ in range(10):
            canary.should_sample()
        assert canary._rng.getstate() == state


class TestOracle:
    def test_oracle_answers_elements_serialize(self, view_tree):
        expected = oracle_answers("//name", view_tree)
        assert expected == {
            "<name>Ann</name>": 1,
            "<name>Bob</name>": 1,
        }

    def test_oracle_answers_text_nodes_yield_value(self, view_tree):
        expected = oracle_answers("//name/text()", view_tree)
        assert expected == {"Ann": 1, "Bob": 1}

    def test_compare_matching_multisets(self, view_tree):
        expected = oracle_answers("//name", view_tree)
        served = [node for node in view_tree.children[0].children]
        served += [node for node in view_tree.children[1].children]
        assert compare_answers(expected, served) == (0, 0)

    def test_compare_detects_missing_and_extra(self, view_tree):
        expected = oracle_answers("//name", view_tree)
        served = ["<name>Ann</name>", "<name>Eve</name>"]
        missing, extra = compare_answers(expected, served)
        assert (missing, extra) == (1, 1)

    def test_compare_is_multiset_not_set(self, view_tree):
        expected = oracle_answers("//name", view_tree)
        served = ["<name>Ann</name>", "<name>Ann</name>"]
        missing, extra = compare_answers(expected, served)
        assert (missing, extra) == (1, 1)  # Bob missing, duplicate Ann extra


class TestCheck:
    def test_clean_answer_passes(self, view_tree):
        canary = SecurityCanary()
        served = ["<name>Ann</name>", "<name>Bob</name>"]
        event = canary.check("nurse", "//name", served, view_tree=view_tree)
        assert event.ok and event.violations == 0
        assert event.expected_count == 2 and event.actual_count == 2
        assert canary.checks == 1 and canary.violations == 0

    def test_leak_is_flagged(self, view_tree):
        canary = SecurityCanary()
        served = [
            "<name>Ann</name>",
            "<name>Bob</name>",
            "<ssn>123</ssn>",  # leaked node the view does not expose
        ]
        event = canary.check("nurse", "//name", served, view_tree=view_tree)
        assert not event.ok
        assert event.extra == 1 and event.violations == 1
        assert canary.violations == 1

    def test_counters_accumulate(self, view_tree):
        canary = SecurityCanary()
        served = ["<name>Ann</name>", "<name>Bob</name>"]
        for _ in range(3):
            canary.check("nurse", "//name", served, view_tree=view_tree)
        canary.check("nurse", "//name", [], view_tree=view_tree)
        assert canary.checks == 4 and canary.violations == 2

    def test_event_records_configuration(self, view_tree):
        canary = SecurityCanary(sample_rate=0.25, seed=0)
        event = canary.check("nurse", "//name", [], view_tree=view_tree)
        assert event.sample_rate == 0.25
        assert event.policy == "nurse"
        assert event.query == "//name"
