"""Event schema round-trips, bounded-sink semantics, and pipeline
isolation (a failing sink must never propagate)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import (
    CallbackSink,
    CanaryEvent,
    DenialEvent,
    ErrorEvent,
    EventPipeline,
    EVENT_TYPES,
    JsonlFileSink,
    PolicyEvent,
    QueryEvent,
    RingBufferSink,
    event_from_dict,
    parse_jsonl,
    read_jsonl,
)


def make_query_event(index=0, policy="nurse", **overrides):
    fields = dict(
        policy=policy,
        query="//patient/name",
        rewritten="/hospital/dept/patientInfo/patient/name",
        strategy="virtual",
        cache_hit=bool(index % 2),
        result_count=index,
        visits=index * 3,
        latency_seconds=index * 0.001,
        slow=False,
        profile=None,
        timestamp=1000.0 + index,
    )
    fields.update(overrides)
    return QueryEvent(**fields)


class TestSchema:
    def test_query_event_round_trip(self):
        event = make_query_event(7, slow=True, profile="EXPLAIN ...")
        payload = json.loads(event.to_json())
        rebuilt = event_from_dict(payload)
        assert isinstance(rebuilt, QueryEvent)
        assert rebuilt.to_dict() == event.to_dict()

    @pytest.mark.parametrize(
        "event",
        [
            DenialEvent("nurse", "//trial", "trial", "E_LABEL_DENIED", "no"),
            PolicyEvent("register", "nurse"),
            ErrorEvent("nurse", "//a[", "E_PARSE_XPATH", "bad query"),
            CanaryEvent(
                policy="nurse",
                query="//name",
                sample_rate=0.5,
                expected_count=3,
                actual_count=4,
                missing=0,
                extra=1,
                violations=1,
                ok=False,
            ),
        ],
    )
    def test_every_kind_round_trips(self, event):
        rebuilt = event_from_dict(json.loads(event.to_json()))
        assert type(rebuilt) is type(event)
        assert rebuilt.to_dict() == event.to_dict()

    def test_kind_registry_is_complete(self):
        assert set(EVENT_TYPES) == {
            "query",
            "denial",
            "policy",
            "error",
            "canary",
            "degradation",
        }

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(KeyError):
            event_from_dict({"kind": "from-the-future"})

    def test_timestamp_defaults_to_now(self):
        import time

        before = time.time()
        event = PolicyEvent("register", "p")
        assert before <= event.timestamp <= time.time()

    def test_unknown_payload_keys_are_ignored(self):
        payload = PolicyEvent("drop", "p", timestamp=5.0).to_dict()
        payload["added_in_v99"] = "surprise"
        rebuilt = event_from_dict(payload)
        assert rebuilt.action == "drop" and rebuilt.timestamp == 5.0


class TestCorrelationFields:
    """``trace_id`` (query/denial/error) and ``fingerprint`` (query)
    join audit events to traces and workload entries."""

    def test_query_event_carries_fingerprint_and_trace_id(self):
        event = make_query_event(
            1, fingerprint="92842f23398efdad", trace_id="t-123"
        )
        rebuilt = event_from_dict(json.loads(event.to_json()))
        assert rebuilt.fingerprint == "92842f23398efdad"
        assert rebuilt.trace_id == "t-123"

    def test_defaults_are_empty_strings(self):
        event = make_query_event(0)
        assert event.fingerprint == ""
        assert event.trace_id == ""

    @pytest.mark.parametrize(
        "event",
        [
            DenialEvent(
                "nurse", "//trial", "trial", "E_LABEL_DENIED", "no",
                trace_id="t-9",
            ),
            ErrorEvent(
                "nurse", "//a[", "E_PARSE_XPATH", "bad", trace_id="t-9"
            ),
        ],
    )
    def test_denial_and_error_round_trip_trace_id(self, event):
        rebuilt = event_from_dict(json.loads(event.to_json()))
        assert rebuilt.trace_id == "t-9"
        assert rebuilt.to_dict() == event.to_dict()

    def test_pre_trace_id_payloads_still_parse(self):
        # a JSONL trail written before these fields existed
        payload = make_query_event(2).to_dict()
        del payload["trace_id"]
        del payload["fingerprint"]
        rebuilt = event_from_dict(payload)
        assert rebuilt.trace_id == ""
        assert rebuilt.fingerprint == ""


# JSON-safe scalar values for free-form string-ish fields.
_text = st.text(max_size=40)


@settings(max_examples=60, deadline=None)
@given(
    policy=_text,
    query=_text,
    rewritten=_text,
    strategy=_text,
    cache_hit=st.booleans(),
    result_count=st.integers(min_value=0, max_value=10**9),
    visits=st.integers(min_value=0, max_value=10**9),
    latency=st.floats(
        min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    slow=st.booleans(),
    profile=st.one_of(st.none(), _text),
    timestamp=st.floats(
        min_value=0, max_value=4e9, allow_nan=False, allow_infinity=False
    ),
)
def test_query_event_round_trip_property(
    policy,
    query,
    rewritten,
    strategy,
    cache_hit,
    result_count,
    visits,
    latency,
    slow,
    profile,
    timestamp,
):
    """Any JSON-safe payload survives to_dict -> JSONL -> from_dict."""
    event = QueryEvent(
        policy=policy,
        query=query,
        rewritten=rewritten,
        strategy=strategy,
        cache_hit=cache_hit,
        result_count=result_count,
        visits=visits,
        latency_seconds=latency,
        slow=slow,
        profile=profile,
        timestamp=timestamp,
    )
    line = event.to_json()
    (rebuilt,) = list(parse_jsonl([line, "", "   "]))
    assert rebuilt.to_dict() == event.to_dict()


class TestRingBufferSink:
    def test_keeps_most_recent_and_counts_evictions(self):
        sink = RingBufferSink(capacity=3)
        for index in range(5):
            sink.emit(make_query_event(index))
        assert len(sink) == 3
        assert sink.evicted == 2
        assert sink.emitted == 5
        assert [event.result_count for event in sink.events()] == [2, 3, 4]

    def test_filters(self):
        sink = RingBufferSink(capacity=10)
        sink.emit(make_query_event(0, policy="a"))
        sink.emit(make_query_event(1, policy="b"))
        sink.emit(PolicyEvent("register", "a"))
        assert len(sink.events(kind="query")) == 2
        assert len(sink.events(policy="a")) == 2
        assert len(sink.events(kind="query", policy="a")) == 1

    def test_no_evictions_below_capacity(self):
        sink = RingBufferSink(capacity=8)
        for index in range(8):
            sink.emit(make_query_event(index))
        assert sink.evicted == 0 and len(sink) == 8

    def test_clear(self):
        sink = RingBufferSink(capacity=2)
        sink.emit(make_query_event(0))
        sink.clear()
        assert len(sink) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJsonlFileSink:
    def test_writes_parseable_jsonl(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        sink = JsonlFileSink(path)
        sink.emit(make_query_event(1))
        sink.emit(PolicyEvent("drop", "nurse", timestamp=2.0))
        sink.close()
        events = read_jsonl(path)
        assert [event.kind for event in events] == ["query", "policy"]
        assert events[0].result_count == 1

    def test_rotation_keeps_backups(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        line_size = len(make_query_event(0).to_json()) + 1
        sink = JsonlFileSink(path, max_bytes=line_size * 2, backups=2)
        for index in range(7):
            sink.emit(make_query_event(index))
        sink.close()
        assert sink.rotations >= 2
        assert path.exists()
        assert (tmp_path / "audit.jsonl.1").exists()
        assert (tmp_path / "audit.jsonl.2").exists()
        assert not (tmp_path / "audit.jsonl.3").exists()
        # every surviving line is still valid JSONL
        survivors = (
            read_jsonl(path)
            + read_jsonl(tmp_path / "audit.jsonl.1")
            + read_jsonl(tmp_path / "audit.jsonl.2")
        )
        assert survivors and all(e.kind == "query" for e in survivors)

    def test_write_failures_count_drops_not_raise(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        sink = JsonlFileSink(path)
        sink.emit(make_query_event(0))

        class Broken:
            def write(self, line):
                raise OSError("disk full")

            def close(self):
                pass

        sink._handle = Broken()
        sink.emit(make_query_event(1))  # must not raise
        assert sink.dropped == 1
        assert sink.emitted == 1

    def test_append_resumes_existing_file(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with JsonlFileSink(path) as sink:
            sink.emit(make_query_event(0))
        with JsonlFileSink(path) as sink:
            sink.emit(make_query_event(1))
        assert len(read_jsonl(path)) == 2


class TestCallbackSink:
    def test_delivers_and_swallows(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(make_query_event(0))
        assert len(seen) == 1 and sink.emitted == 1

        def explode(event):
            raise RuntimeError("bad consumer")

        bad = CallbackSink(explode)
        bad.emit(make_query_event(0))
        assert bad.dropped == 1


class TestEventPipeline:
    def test_inactive_without_sinks(self):
        pipeline = EventPipeline()
        assert not pipeline.active
        pipeline.emit(make_query_event(0))  # no-op, no error
        assert pipeline.emitted == 0

    def test_fans_out_to_all_sinks(self):
        pipeline = EventPipeline()
        first = pipeline.add_sink(RingBufferSink(4))
        second = pipeline.add_sink(RingBufferSink(4))
        pipeline.emit(make_query_event(0))
        assert len(first) == len(second) == 1
        assert pipeline.emitted == 1

    def test_raising_sink_cannot_fail_emission(self):
        class HostileSink:
            dropped = 0

            def emit(self, event):
                raise RuntimeError("sink is down")

        pipeline = EventPipeline()
        pipeline.add_sink(HostileSink())
        ring = pipeline.add_sink(RingBufferSink(4))
        pipeline.emit(make_query_event(0))  # must not raise
        assert pipeline.dropped == 1
        assert len(ring) == 1  # later sinks still receive the event

    def test_remove_sink(self):
        pipeline = EventPipeline()
        ring = pipeline.add_sink(RingBufferSink(4))
        pipeline.remove_sink(ring)
        pipeline.remove_sink(ring)  # idempotent
        assert not pipeline.active
