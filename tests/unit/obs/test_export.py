"""Prometheus text-exposition export of metrics snapshots."""

from repro.obs.export import prometheus_text, sanitize_metric_name
from repro.obs.metrics import MetricsRegistry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("plan_cache.hits") == "plan_cache_hits"

    def test_valid_names_pass_through(self):
        assert sanitize_metric_name("query_total:rate") == "query_total:rate"

    def test_bad_leading_character(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_arbitrary_junk(self):
        assert sanitize_metric_name("a b-c/d") == "a_b_c_d"


class TestPrometheusText:
    def test_counters(self):
        text = prometheus_text({"counters": {"query.count": 3}})
        assert "# TYPE repro_query_count_total counter\n" in text
        assert "repro_query_count_total 3\n" in text

    def test_histograms_render_as_summary_with_min_max(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("query.latency", value)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_query_latency summary" in text
        assert "repro_query_latency_count 3" in text
        assert "repro_query_latency_sum 6.0" in text
        assert "repro_query_latency_min 1.0" in text
        assert "repro_query_latency_max 3.0" in text

    def test_accepts_registry_directly(self):
        registry = MetricsRegistry()
        registry.increment("a.b")
        assert "repro_a_b_total 1" in prometheus_text(registry)

    def test_custom_prefix(self):
        text = prometheus_text({"counters": {"x": 1}}, prefix="svc")
        assert text.startswith("# TYPE svc_x_total counter")

    def test_empty_snapshot(self):
        assert prometheus_text({}) == ""
        assert prometheus_text({"counters": {}, "histograms": {}}) == ""

    def test_output_is_sorted_and_newline_terminated(self):
        text = prometheus_text({"counters": {"b": 1, "a": 2}})
        assert text.index("repro_a_total") < text.index("repro_b_total")
        assert text.endswith("\n")

    def test_every_sample_line_is_parseable(self):
        registry = MetricsRegistry()
        registry.increment("query.count", 5)
        registry.observe("query.latency", 0.25)
        for line in prometheus_text(registry).strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.split(" ")
            assert name and float(value) >= 0
