"""Prometheus text-exposition export of metrics snapshots."""

from repro.obs.export import (
    LEGACY_TENANT_SERIES,
    prometheus_text,
    publish_cache_report,
    publish_workload,
    sanitize_metric_name,
)
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("plan_cache.hits") == "plan_cache_hits"

    def test_valid_names_pass_through(self):
        assert sanitize_metric_name("query_total:rate") == "query_total:rate"

    def test_bad_leading_character(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_arbitrary_junk(self):
        assert sanitize_metric_name("a b-c/d") == "a_b_c_d"


class TestPrometheusText:
    def test_counters(self):
        text = prometheus_text({"counters": {"query.count": 3}})
        assert "# TYPE repro_query_count_total counter\n" in text
        assert "repro_query_count_total 3\n" in text

    def test_histograms_render_as_summary_with_min_max(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("query.latency", value)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_query_latency summary" in text
        assert "repro_query_latency_count 3" in text
        assert "repro_query_latency_sum 6.0" in text
        assert "repro_query_latency_min 1.0" in text
        assert "repro_query_latency_max 3.0" in text

    def test_accepts_registry_directly(self):
        registry = MetricsRegistry()
        registry.increment("a.b")
        assert "repro_a_b_total 1" in prometheus_text(registry)

    def test_custom_prefix(self):
        text = prometheus_text({"counters": {"x": 1}}, prefix="svc")
        assert text.startswith("# TYPE svc_x_total counter")

    def test_empty_snapshot(self):
        assert prometheus_text({}) == ""
        assert prometheus_text({"counters": {}, "histograms": {}}) == ""

    def test_output_is_sorted_and_newline_terminated(self):
        text = prometheus_text({"counters": {"b": 1, "a": 2}})
        assert text.index("repro_a_total") < text.index("repro_b_total")
        assert text.endswith("\n")

    def test_every_sample_line_is_parseable(self):
        registry = MetricsRegistry()
        registry.increment("query.count", 5)
        registry.observe("query.latency", 0.25)
        for line in prometheus_text(registry).strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.split(" ")
            assert name and float(value) >= 0


class TestLabeledExport:
    def test_labeled_counter_samples_share_one_type_header(self):
        registry = MetricsRegistry()
        registry.increment("req", labels={"tenant": "a"})
        registry.increment("req", labels={"tenant": "b"})
        text = prometheus_text(registry)
        assert text.count("# TYPE repro_req_total counter") == 1
        assert 'repro_req_total{tenant="a"} 1' in text
        assert 'repro_req_total{tenant="b"} 1' in text

    def test_gauges_render_with_gauge_type(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue.depth", 4)
        registry.set_gauge("queue.depth", 2, labels={"tenant": "a"})
        text = prometheus_text(registry)
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" not in text.splitlines()  # labeled only
        assert "repro_queue_depth 4" in text
        assert 'repro_queue_depth{tenant="a"} 2' in text

    def test_bucketed_histogram_renders_prometheus_histogram(self):
        registry = MetricsRegistry()
        for value in (0.05, 0.3, 0.9):
            registry.observe(
                "lat", value, labels={"tenant": "a"}, buckets=(0.1, 0.5, 1.0)
            )
        text = prometheus_text(registry)
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{tenant="a",le="0.1"} 1' in text
        assert 'repro_lat_bucket{tenant="a",le="0.5"} 2' in text
        assert 'repro_lat_bucket{tenant="a",le="1.0"} 3' in text
        assert 'repro_lat_bucket{tenant="a",le="+Inf"} 3' in text
        assert 'repro_lat_count{tenant="a"} 3' in text
        assert 'repro_lat_sum{tenant="a"}' in text

    def test_above_top_bucket_only_in_inf(self):
        registry = MetricsRegistry()
        registry.observe("lat", 99.0, buckets=(1.0,))
        text = prometheus_text(registry)
        assert 'repro_lat_bucket{le="1.0"} 0' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text

    def test_legacy_tenant_shim_emits_old_flattened_names(self):
        registry = MetricsRegistry()
        for name in LEGACY_TENANT_SERIES:
            registry.observe(
                name, 0.02, labels={"tenant": "nurse"}, buckets=LATENCY_BUCKETS
            )
        text = prometheus_text(registry)
        # new labeled histogram form...
        assert 'repro_serving_latency_seconds_bucket{tenant="nurse",le=' in text
        # ...plus the pre-label tenant-in-the-name summary names
        assert "repro_serving_latency_seconds_nurse_count 1" in text
        assert "repro_serving_latency_seconds_nurse_sum" in text
        assert "repro_serving_latency_seconds_nurse_min" in text
        assert "repro_serving_e2e_seconds_nurse_count 1" in text

    def test_legacy_shim_skips_series_without_tenant_label(self):
        registry = MetricsRegistry()
        registry.observe("serving.latency_seconds", 0.02)
        text = prometheus_text(registry)
        assert "repro_serving_latency_seconds_count 1" in text
        # no tenant label: nothing flattened beyond the plain series
        assert "repro_serving_latency_seconds__count" not in text

    def test_legacy_shim_ignores_non_tenant_labels(self):
        registry = MetricsRegistry()
        registry.observe(
            "serving.latency_seconds",
            0.02,
            labels={"region": "eu"},
            buckets=LATENCY_BUCKETS,
        )
        text = prometheus_text(registry)
        assert 'repro_serving_latency_seconds_bucket{region="eu"' in text
        assert "repro_serving_latency_seconds_eu" not in text

    def test_legacy_shim_sanitizes_tenant_names(self):
        registry = MetricsRegistry()
        registry.observe(
            "serving.latency_seconds",
            0.02,
            labels={"tenant": "real-estate-buyer"},
            buckets=LATENCY_BUCKETS,
        )
        text = prometheus_text(registry)
        assert (
            "repro_serving_latency_seconds_real_estate_buyer_count 1" in text
        )

    def test_legacy_shim_not_applied_to_other_series(self):
        registry = MetricsRegistry()
        registry.observe(
            "workload.latency_seconds",
            0.02,
            labels={"tenant": "nurse"},
            buckets=LATENCY_BUCKETS,
        )
        text = prometheus_text(registry)
        assert 'repro_workload_latency_seconds_bucket{tenant="nurse"' in text
        assert "repro_workload_latency_seconds_nurse" not in text


class TestPublishWorkload:
    def _profiler(self):
        from repro.obs.workload import WorkloadProfiler
        from repro.xpath.fingerprint import query_fingerprint

        profiler = WorkloadProfiler(capacity=4)
        profiler.record_query(
            "nurse", "nurse", query_fingerprint("//patient"), 0.001
        )
        profiler.record_query(
            "nurse", "nurse", query_fingerprint("//patient"), 0.002
        )
        profiler.record_error(
            "doctor", "doctor", query_fingerprint("//secret"), denied=True
        )
        return profiler

    def test_publishes_per_tenant_gauges(self):
        registry = MetricsRegistry()
        publish_workload(self._profiler(), registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges['workload.queries{tenant="nurse"}'] == 2
        assert gauges['workload.queries{tenant="doctor"}'] == 1
        assert gauges['workload.denials{tenant="doctor"}'] == 1
        assert gauges['workload.fingerprints{tenant="nurse"}'] == 1
        assert gauges["workload.capacity"] == 4

    def test_no_per_fingerprint_series(self):
        # per-fingerprint series would blow scrape cardinality; only
        # bounded per-tenant totals may reach the registry
        registry = MetricsRegistry()
        profiler = self._profiler()
        publish_workload(profiler, registry)
        digest = profiler.top("nurse")[0]["fingerprint"]
        assert digest not in str(registry.snapshot()["gauges"])

    def test_none_profiler_is_noop(self):
        registry = MetricsRegistry()
        publish_workload(None, registry)
        assert registry.snapshot()["gauges"] == {}

    def test_renders_through_prometheus_text(self):
        registry = MetricsRegistry()
        publish_workload(self._profiler(), registry)
        text = prometheus_text(registry)
        assert "# TYPE repro_workload_queries gauge" in text
        assert 'repro_workload_queries{tenant="nurse"} 2' in text


class TestPublishCacheReport:
    REPORT = {
        "plan_cache": {
            "bytes": 4096,
            "entries": 3,
            "hit_rate": 0.75,
            "evictions": 1,
        },
        "node_tables": {"bytes": 1024, "entries": 1},
        "total_bytes": 5120,
    }

    def test_publishes_labeled_cache_gauges(self):
        registry = MetricsRegistry()
        publish_cache_report(self.REPORT, registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges['cache.bytes{cache="plan_cache"}'] == 4096
        assert gauges['cache.entries{cache="plan_cache"}'] == 3
        assert gauges['cache.hit_ratio{cache="plan_cache"}'] == 0.75
        assert gauges['cache.evictions{cache="plan_cache"}'] == 1
        assert gauges['cache.bytes{cache="node_tables"}'] == 1024
        assert gauges["cache.total_bytes"] == 5120

    def test_sections_without_optional_counters(self):
        registry = MetricsRegistry()
        publish_cache_report(self.REPORT, registry)
        gauges = registry.snapshot()["gauges"]
        # node_tables has no hit_rate/evictions: no phantom series
        assert 'cache.hit_ratio{cache="node_tables"}' not in gauges

    def test_empty_report_is_noop(self):
        registry = MetricsRegistry()
        publish_cache_report({}, registry)
        publish_cache_report(None, registry)
        assert registry.snapshot()["gauges"] == {}

    def test_accepts_real_engine_report(self):
        from repro.core.engine import SecureQueryEngine
        from repro.workloads.hospital import hospital_dtd, nurse_spec

        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="1")
        registry = MetricsRegistry()
        publish_cache_report(engine.introspect(), registry)
        gauges = registry.snapshot()["gauges"]
        assert 'cache.entries{cache="plan_cache"}' in gauges
        assert "cache.total_bytes" in gauges
