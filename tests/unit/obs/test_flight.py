"""The flight recorder: tail retention, reservoir sampling, lookup."""

import pytest

from repro.obs.flight import FlightRecorder, TraceRecord, render_trace
from repro.obs.trace import Tracer


def _record(index, ok=True, error_code="", slow=False, violations=0, tenant="t"):
    return TraceRecord(
        "trace%04d" % index,
        tenant=tenant,
        policy="nurse",
        query="//a",
        ok=ok,
        error_code=error_code,
        latency_seconds=0.01,
        slow=slow,
        canary_violations=violations,
    )


class TestTraceRecord:
    def test_status_classification(self):
        assert _record(1).status == "ok"
        assert _record(2, slow=True).status == "slow"
        assert _record(3, ok=False, error_code="E_BUDGET").status == "error"
        assert _record(4, ok=False, error_code="E_LABEL_DENIED").status == "denied"
        assert _record(5, ok=False, error_code="E_SECURITY").status == "denied"
        assert _record(6, violations=2).status == "canary-violation"

    def test_interesting_is_the_tail_class(self):
        assert not _record(1).interesting
        assert _record(2, slow=True).interesting
        assert _record(3, ok=False, error_code="E_BUDGET").interesting
        assert _record(4, violations=1).interesting

    def test_from_span_assigns_preorder_span_ids(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            with tracer.span("queue_wait"):
                pass
            with tracer.span("batch"):
                with tracer.span("query"):
                    pass
        record = TraceRecord.from_span(root, trace_id="t1")
        spans = record.spans
        assert spans["name"] == "request"
        assert spans["span_id"] == "0001"
        assert spans["parent_span_id"] == ""
        children = spans["children"]
        assert [c["name"] for c in children] == ["queue_wait", "batch"]
        assert [c["span_id"] for c in children] == ["0002", "0003"]
        assert all(c["parent_span_id"] == "0001" for c in children)
        query = children[1]["children"][0]
        assert (query["name"], query["parent_span_id"]) == ("query", "0003")

    def test_from_span_folds_canary_attribute(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            pass
        root.set(canary_violations=3)
        record = TraceRecord.from_span(root, trace_id="t1")
        assert record.canary_violations == 3
        assert record.interesting
        assert record.status == "canary-violation"

    def test_to_dict_is_json_safe(self):
        import json

        tracer = Tracer()
        with tracer.span("request", tenant="t") as root:
            pass
        record = TraceRecord.from_span(root, trace_id="abc", tenant="t")
        assert json.loads(json.dumps(record.to_dict()))["trace_id"] == "abc"


class TestFlightRecorder:
    def test_interesting_traces_always_retained_until_capacity(self):
        recorder = FlightRecorder(capacity=2, tail_capacity=100)
        for index in range(50):
            assert recorder.record(
                _record(index, ok=False, error_code="E_BUDGET")
            )
        stats = recorder.stats()
        assert stats["tail"] == 50
        assert stats["tail_evicted"] == 0
        for index in range(50):
            assert recorder.get("trace%04d" % index) is not None

    def test_tail_eviction_is_fifo_and_counted(self):
        recorder = FlightRecorder(capacity=2, tail_capacity=3)
        for index in range(5):
            recorder.record(_record(index, slow=True))
        stats = recorder.stats()
        assert stats["tail"] == 3
        assert stats["tail_evicted"] == 2
        assert recorder.get("trace0000") is None
        assert recorder.get("trace0001") is None
        assert recorder.get("trace0004") is not None

    def test_ok_traces_reservoir_sampled_and_bounded(self):
        recorder = FlightRecorder(capacity=8, tail_capacity=8, seed=0)
        for index in range(1000):
            recorder.record(_record(index))
        stats = recorder.stats()
        assert stats["ok_sampled"] == 8
        assert stats["ok_seen"] == 1000
        assert stats["ok_replaced"] + stats["ok_dropped"] == 1000 - 8
        assert len(recorder) == 8

    def test_sampling_is_deterministic_under_seed(self):
        def run(seed):
            recorder = FlightRecorder(capacity=4, tail_capacity=4, seed=seed)
            for index in range(200):
                recorder.record(_record(index))
            return sorted(r.trace_id for r in recorder.traces())

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_traces_newest_first_with_filters(self):
        recorder = FlightRecorder(capacity=16, tail_capacity=16)
        recorder.record(_record(0, tenant="a"))
        recorder.record(_record(1, tenant="b", slow=True))
        recorder.record(_record(2, tenant="a", ok=False, error_code="E_SECURITY"))
        ids = [r.trace_id for r in recorder.traces()]
        assert ids == ["trace0002", "trace0001", "trace0000"]
        assert [r.trace_id for r in recorder.traces(tenant="a")] == [
            "trace0002",
            "trace0000",
        ]
        assert [r.trace_id for r in recorder.traces(status="slow")] == [
            "trace0001"
        ]
        assert [r.trace_id for r in recorder.traces(n=1)] == ["trace0002"]

    def test_to_dict_payload_shape(self):
        recorder = FlightRecorder()
        recorder.record(_record(0))
        payload = recorder.to_dict()
        assert set(payload) == {"stats", "traces"}
        assert payload["stats"]["recorded"] == 1
        assert payload["traces"][0]["trace_id"] == "trace0000"

    def test_rejects_nonpositive_capacities(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(tail_capacity=0)


def test_render_trace_includes_header_and_span_tree():
    tracer = Tracer()
    with tracer.span("request") as root:
        with tracer.span("batch", batch_size=3):
            pass
    record = TraceRecord.from_span(
        root, trace_id="abcd" * 8, tenant="nurse", query="//a", slow=True
    )
    text = render_trace(record.to_dict())
    lines = text.splitlines()
    assert "abcdabcdabcdabcd" in lines[0]
    assert "slow" in lines[0]
    assert any("request [0001]" in line for line in lines)
    assert any("batch [0002]" in line and "batch_size=3" in line for line in lines)
