"""Cache/memory introspection (:mod:`repro.obs.introspect`)."""

import json

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.dtd.generator import DocumentGenerator
from repro.obs.introspect import (
    engine_report,
    plan_cache_report,
    report_total_bytes,
)
from repro.workloads.hospital import hospital_dtd, nurse_spec


@pytest.fixture()
def engine():
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="1")
    return engine


@pytest.fixture()
def document():
    return DocumentGenerator(hospital_dtd(), seed=3).generate()


class TestPlanCacheReport:
    def test_empty_cache(self, engine):
        report = plan_cache_report(engine.plan_cache)
        assert report["entries"] == 0
        assert report["bytes"] == 0
        assert report["distinct_fingerprints"] == 0

    def test_counts_entries_and_fingerprints(self, engine, document):
        engine.query("nurse", "//patient/name", document)
        engine.query("nurse", '//patient[wardNo = "1"]', document)
        engine.query("nurse", '//patient[wardNo = "2"]', document)
        report = plan_cache_report(engine.plan_cache)
        # three distinct texts cached, but the two wardNo variants
        # share one fingerprint
        assert report["entries"] == 3
        assert report["distinct_fingerprints"] == 2
        assert report["bytes"] > 0
        assert report["hits"] == 0


class TestEngineReport:
    def test_sections_and_totals(self, engine, document):
        engine.query(
            "nurse",
            "//patient/name",
            document,
            options=ExecutionOptions(use_index=True, strategy="columnar"),
        )
        engine.query(
            "nurse",
            "//patient",
            document,
            options=ExecutionOptions(strategy="materialized"),
        )
        report = engine.introspect()
        assert report["plan_cache"]["entries"] >= 1
        assert report["node_tables"]["entries"] == 1
        assert report["node_tables"]["rows"] > 0
        assert report["node_tables"]["bytes"] > 0
        assert report["document_indexes"]["entries"] == 1
        assert report["document_indexes"]["bytes"] > 0
        views = report["materialized_views"]
        assert views["entries"] == 1
        assert views["nodes"] > 0
        assert views["by_policy"] == {"nurse": 1}
        assert report["total_bytes"] == report_total_bytes(report)
        assert report["total_bytes"] >= (
            report["plan_cache"]["bytes"] + report["node_tables"]["bytes"]
        )

    def test_fresh_engine_is_near_empty(self, engine):
        report = engine_report(engine)
        assert report["node_tables"] == {
            "entries": 0,
            "rows": 0,
            "bytes": 0,
        }
        assert report["materialized_views"]["entries"] == 0

    def test_report_is_json_safe(self, engine, document):
        engine.query("nurse", "//patient/name", document)
        json.dumps(engine.introspect())

    def test_invalidation_shrinks_the_report(self, engine, document):
        engine.query(
            "nurse",
            "//patient/name",
            document,
            options=ExecutionOptions(use_index=True),
        )
        assert engine.introspect()["document_indexes"]["entries"] == 1
        engine.invalidate()
        report = engine.introspect()
        assert report["document_indexes"]["entries"] == 0
        assert report["plan_cache"]["entries"] == 0


class TestNbytes:
    def test_node_table_nbytes_positive_and_stable(self, document):
        from repro.xmlmodel.store import build_node_table

        table = build_node_table(document)
        assert table.nbytes() > 0
        assert table.nbytes() == table.nbytes()

    def test_node_table_nbytes_grows_with_rows(self, document):
        from repro.xmlmodel.store import build_node_table

        bigger = DocumentGenerator(
            hospital_dtd(), seed=3, max_branch=6
        ).generate()
        small = build_node_table(document)
        large = build_node_table(bigger)
        if large.size > small.size:
            assert large.nbytes() > small.nbytes()

    def test_document_index_nbytes(self, document):
        from repro.xmlmodel.index import build_index

        index = build_index(document)
        assert index.nbytes() > 0
