"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    metrics_registry,
    observe,
    record,
)


@pytest.fixture(autouse=True)
def clean_global_state():
    disable_metrics()
    metrics_registry().reset()
    yield
    disable_metrics()
    metrics_registry().reset()


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5


class TestHistogram:
    def test_streaming_summary(self):
        histogram = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0

    def test_empty_dict_form(self):
        assert Histogram("h").as_dict() == {
            "count": 0,
            "sum": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
        }


class TestMetricsRegistry:
    def test_handles_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_snapshot_is_json_safe_and_sorted(self):
        import json

        registry = MetricsRegistry()
        registry.increment("z")
        registry.increment("a", 2)
        registry.observe("lat", 0.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"] == {"a": 2, "z": 1}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must not raise

    def test_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(7)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestGuardedHelpers:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        record("ignored")
        observe("ignored.too", 1.0)
        snap = metrics_registry().snapshot()
        assert "ignored" not in snap["counters"]
        assert "ignored.too" not in snap["histograms"]

    def test_enable_disable_roundtrip(self):
        enable_metrics()
        assert metrics_enabled()
        record("seen", 3)
        observe("seen.lat", 0.25)
        disable_metrics()
        record("seen")  # dropped again
        snap = metrics_registry().snapshot()
        assert snap["counters"]["seen"] == 3
        assert snap["histograms"]["seen.lat"]["count"] == 1
