"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    metrics_registry,
    observe,
    record,
    series_name,
    set_gauge,
    split_series,
)


@pytest.fixture(autouse=True)
def clean_global_state():
    disable_metrics()
    metrics_registry().reset()
    yield
    disable_metrics()
    metrics_registry().reset()


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5


class TestHistogram:
    def test_streaming_summary(self):
        histogram = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0

    def test_empty_dict_form(self):
        assert Histogram("h").as_dict() == {
            "count": 0,
            "sum": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
        }


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0


class TestSeriesNames:
    def test_unlabeled_series_name_is_the_name(self):
        assert series_name("a.b") == "a.b"
        assert series_name("a.b", {}) == "a.b"

    def test_labels_render_sorted(self):
        rendered = series_name("lat", {"tenant": "nurse", "doc": "h"})
        assert rendered == 'lat{doc="h",tenant="nurse"}'

    def test_split_series_roundtrip(self):
        rendered = series_name("lat", {"tenant": "nurse"})
        assert split_series(rendered) == ("lat", 'tenant="nurse"')
        assert split_series("plain") == ("plain", "")


class TestBucketedHistogram:
    def test_cumulative_buckets(self):
        histogram = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (0.1, 1),
            (1.0, 3),
            (10.0, 4),
        ]
        # the 50.0 observation lives only in the implicit +Inf bucket
        assert histogram.count == 5

    def test_bucketless_histogram_dict_has_no_buckets_key(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        assert "buckets" not in histogram.as_dict()

    def test_bucketed_histogram_dict_carries_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        assert histogram.as_dict()["buckets"] == [[1.0, 0], [2.0, 1]]

    def test_quantile_estimate_lands_in_the_right_bucket(self):
        histogram = Histogram("h", buckets=LATENCY_BUCKETS)
        for _ in range(99):
            histogram.observe(0.002)
        histogram.observe(9.0)
        assert histogram.quantile(0.5) <= 0.0025
        assert histogram.quantile(0.999) > 5.0


class TestLabeledRegistry:
    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.increment("req", labels={"tenant": "a"})
        registry.increment("req", 2, labels={"tenant": "b"})
        registry.increment("req")
        counters = registry.snapshot()["counters"]
        assert counters["req"] == 1
        assert counters['req{tenant="a"}'] == 1
        assert counters['req{tenant="b"}'] == 2

    def test_labeled_handles_are_get_or_create(self):
        registry = MetricsRegistry()
        labels = {"tenant": "a"}
        assert registry.counter("c", labels) is registry.counter("c", labels)
        assert registry.histogram("h", labels) is registry.histogram(
            "h", labels
        )
        assert registry.gauge("g", labels) is registry.gauge("g", labels)

    def test_gauge_section_in_snapshot(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 7, labels={"tenant": "a"})
        registry.set_gauge("depth", 3)
        gauges = registry.snapshot()["gauges"]
        assert gauges == {"depth": 3, 'depth{tenant="a"}': 7}

    def test_observe_with_buckets_renders_in_snapshot(self):
        registry = MetricsRegistry()
        registry.observe(
            "lat", 0.3, labels={"tenant": "a"}, buckets=(0.25, 0.5)
        )
        entry = registry.snapshot()["histograms"]['lat{tenant="a"}']
        assert entry["count"] == 1
        assert entry["buckets"] == [[0.25, 0], [0.5, 1]]

    def test_reset_zeroes_gauges_and_buckets(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5.0)
        histogram = registry.histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        registry.reset()
        assert gauge.value == 0.0
        assert histogram.as_dict()["buckets"] == [[1.0, 0]]


class TestGuardedGauge:
    def test_set_gauge_respects_enable_flag(self):
        set_gauge("dropped", 9)
        assert "dropped" not in metrics_registry().snapshot().get("gauges", {})
        enable_metrics()
        set_gauge("kept", 4)
        assert metrics_registry().snapshot()["gauges"]["kept"] == 4


class TestMetricsRegistry:
    def test_handles_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_snapshot_is_json_safe_and_sorted(self):
        import json

        registry = MetricsRegistry()
        registry.increment("z")
        registry.increment("a", 2)
        registry.observe("lat", 0.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"] == {"a": 2, "z": 1}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must not raise

    def test_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(7)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestGuardedHelpers:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        record("ignored")
        observe("ignored.too", 1.0)
        snap = metrics_registry().snapshot()
        assert "ignored" not in snap["counters"]
        assert "ignored.too" not in snap["histograms"]

    def test_enable_disable_roundtrip(self):
        enable_metrics()
        assert metrics_enabled()
        record("seen", 3)
        observe("seen.lat", 0.25)
        disable_metrics()
        record("seen")  # dropped again
        snap = metrics_registry().snapshot()
        assert snap["counters"]["seen"] == 3
        assert snap["histograms"]["seen.lat"]["count"] == 1
