"""Unit tests for explain profiles (repro.obs.profile)."""

from repro.obs.profile import (
    ExplainProfile,
    OperatorStats,
    ProfileCollector,
    ProfileNode,
)


class _Op:
    pass


class TestOperatorStats:
    def test_selectivity(self):
        stats = OperatorStats()
        stats.rows_in = 10
        stats.rows_out = 4
        assert stats.selectivity == 0.4
        assert OperatorStats().selectivity == 1.0

    def test_dict_form_omits_empty_sections(self):
        stats = OperatorStats()
        stats.calls = 1
        assert "kernels" not in stats.as_dict()
        assert "short_circuits" not in stats.as_dict()
        stats.kernels["merge"] = 2
        stats.short_circuits = 1
        out = stats.as_dict()
        assert out["kernels"] == {"merge": 2}
        assert out["short_circuits"] == 1


class TestProfileCollector:
    def test_record_accumulates_per_operator(self):
        collector = ProfileCollector()
        op, other = _Op(), _Op()
        collector.record(op, 5, 3, kernel="merge-join")
        collector.record(op, 2, 2, kernel="child-walk")
        collector.record(other, 1, 1)
        stats = collector.lookup(op)
        assert stats.calls == 2
        assert stats.rows_in == 7
        assert stats.rows_out == 5
        assert stats.kernels == {"merge-join": 1, "child-walk": 1}
        assert len(collector) == 2

    def test_lookup_never_ran(self):
        assert ProfileCollector().lookup(_Op()) is None

    def test_short_circuits_and_events(self):
        collector = ProfileCollector()
        op = _Op()
        collector.short_circuit(op)
        collector.short_circuit(op)
        collector.event("object-backend-fallback")
        assert collector.lookup(op).short_circuits == 2
        assert collector.events == {"object-backend-fallback": 1}


class TestProfileNode:
    def _stats(self, calls=1, rows_in=4, rows_out=2, kernel=None):
        stats = OperatorStats()
        stats.calls = calls
        stats.rows_in = rows_in
        stats.rows_out = rows_out
        if kernel:
            stats.kernels[kernel] = calls
        return stats

    def test_render_annotates_executed_operators(self):
        node = ProfileNode(
            "child", "patient", self._stats(kernel="posting-merge-join")
        )
        line = node.render()
        assert line == (
            "-> child patient  "
            "(calls=1 rows=4->2 kernel=posting-merge-join:1)"
        )

    def test_render_marks_never_executed_leaves(self):
        assert ProfileNode("child", "x").render() == (
            "-> child x  (never executed)"
        )
        zero = self._stats(calls=0, rows_in=0, rows_out=0)
        assert "(never executed)" in ProfileNode("child", "x", zero).render()

    def test_structural_nodes_render_without_annotation(self):
        tree = ProfileNode(
            "slash", "", None, [ProfileNode("child", "a", self._stats())]
        )
        lines = tree.render().splitlines()
        assert lines[0] == "-> slash"
        assert lines[1].startswith("  -> child a  (calls=1")

    def test_to_dict_nested(self):
        tree = ProfileNode(
            "filter", "", self._stats(), [ProfileNode("q:exists", "")]
        )
        out = tree.to_dict()
        assert out["operator"] == "filter"
        assert out["calls"] == 1
        assert out["children"][0]["operator"] == "q:exists"


class TestExplainProfile:
    def test_render_and_dict(self):
        import json

        stats = OperatorStats()
        stats.calls = 1
        profile = ExplainProfile(
            "/a/b",
            strategy="columnar",
            roots=[ProfileNode("child", "b", stats)],
            events={"object-backend-fallback": 2},
        )
        text = profile.render()
        assert text.splitlines()[0] == "EXPLAIN ANALYZE  strategy=columnar"
        assert "query: /a/b" in text
        assert "event: object-backend-fallback x2" in text
        out = profile.to_dict()
        assert out["strategy"] == "columnar"
        assert len(out["plans"]) == 1
        json.dumps(out)  # must not raise
