"""Per-tenant SLO tracking: objectives, burn windows, snapshots."""

import pytest

from repro.obs.metrics import (
    disable_metrics,
    enable_metrics,
    metrics_registry,
    series_name,
)
from repro.obs.slo import BurnWindow, SLObjective, SLOTracker


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSLObjective:
    def test_classification(self):
        objective = SLObjective(threshold_seconds=0.1, target=0.99)
        assert not objective.is_bad(0.05, True)
        assert objective.is_bad(0.2, True)  # slow
        assert objective.is_bad(0.05, False)  # failed
        assert objective.error_budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLObjective(threshold_seconds=0.0)
        with pytest.raises(ValueError):
            SLObjective(target=1.0)
        with pytest.raises(ValueError):
            SLObjective(target=0.0)


class TestBurnWindow:
    def test_counts_within_window(self):
        window = BurnWindow(window_seconds=300.0, buckets=30)
        window.add(1000.0, bad=False)
        window.add(1000.0, bad=True)
        assert window.counts(1000.0) == (1, 1)
        assert window.bad_fraction(1000.0) == pytest.approx(0.5)

    def test_old_buckets_expire(self):
        window = BurnWindow(window_seconds=300.0, buckets=30)
        window.add(1000.0, bad=True)
        assert window.counts(1000.0 + 299.0)[1] == 1
        assert window.counts(1000.0 + 400.0) == (0, 0)

    def test_slot_reuse_resets_stale_epoch(self):
        window = BurnWindow(window_seconds=10.0, buckets=2)
        window.add(0.0, bad=True)
        # same ring slot, much later epoch: old tally must not leak in
        window.add(100.0, bad=False)
        assert window.counts(100.0) == (1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnWindow(window_seconds=0.0)
        with pytest.raises(ValueError):
            BurnWindow(window_seconds=10.0, buckets=0)


class TestSLOTracker:
    def _tracker(self, clock, threshold=0.1, target=0.9):
        return SLOTracker(
            SLObjective(threshold_seconds=threshold, target=target),
            fast_window_seconds=300.0,
            slow_window_seconds=3600.0,
            clock=clock,
        )

    def test_observe_returns_breach(self):
        tracker = self._tracker(FakeClock())
        assert tracker.observe("t", 0.5, True) is True
        assert tracker.observe("t", 0.05, True) is False
        assert tracker.observe("t", 0.05, False) is True

    def test_burn_rate_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        tracker = self._tracker(clock, target=0.9)  # budget = 0.1
        for _ in range(9):
            tracker.observe("t", 0.01, True)
        tracker.observe("t", 0.5, True)
        fast, slow = tracker.burn_rates("t")
        assert fast == pytest.approx(1.0)  # 10% bad / 10% budget
        assert slow == pytest.approx(1.0)
        assert tracker.burn_rates("unseen") == (0.0, 0.0)

    def test_fast_window_forgets_slow_window_remembers(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.observe("t", 9.0, True)  # breach
        clock.advance(600.0)  # past the 5 min fast window, inside 1 h
        tracker.observe("t", 0.01, True)
        fast, slow = tracker.burn_rates("t")
        assert fast == 0.0
        assert slow > 0.0

    def test_snapshot_shape(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.observe("a", 0.01, True)
        tracker.observe("a", 0.5, True)
        tracker.observe("b", 0.01, True)
        snapshot = tracker.snapshot()
        assert snapshot["objective"]["threshold_seconds"] == pytest.approx(0.1)
        assert sorted(snapshot["tenants"]) == ["a", "b"]
        a = snapshot["tenants"]["a"]
        assert a["requests"] == 2
        assert a["breaches"] == 1
        assert a["compliance"] == pytest.approx(0.5)
        assert a["fast"]["bad_fraction"] == pytest.approx(0.5)
        assert a["fast"]["window_seconds"] == pytest.approx(300.0)
        assert a["slow"]["window_seconds"] == pytest.approx(3600.0)

    def test_mirrors_counters_into_registry_when_enabled(self):
        enable_metrics()
        registry = metrics_registry()
        registry.reset()
        try:
            tracker = self._tracker(FakeClock())
            tracker.observe("t", 0.01, True)
            tracker.observe("t", 0.5, True)
            counters = registry.snapshot()["counters"]
            assert counters[series_name("slo.requests", {"tenant": "t"})] == 2
            assert counters[series_name("slo.breaches", {"tenant": "t"})] == 1
        finally:
            registry.reset()
            disable_metrics()

    def test_no_registry_writes_when_disabled(self):
        disable_metrics()
        registry = metrics_registry()
        registry.reset()
        tracker = self._tracker(FakeClock())
        tracker.observe("t", 0.5, True)
        # reset() keeps previously-created series (zeroed, handles stay
        # valid) — the guarantee here is only that nothing was recorded
        counters = registry.snapshot()["counters"]
        assert all(value == 0 for value in counters.values())
