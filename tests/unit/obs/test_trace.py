"""Unit tests for the span tracer (repro.obs.trace)."""

from repro.obs.trace import NULL_SPAN, Span, Tracer


class TestSpan:
    def test_duration_measured(self):
        with Span("work") as span:
            pass
        assert span.ended is not None
        assert span.duration >= 0.0

    def test_open_span_duration_is_elapsed_so_far(self):
        span = Span("open")
        assert span.duration == 0.0  # never entered
        span.__enter__()
        assert span.duration >= 0.0
        assert span.ended is None

    def test_attributes(self):
        with Span("q", policy="nurse") as span:
            span.set(results=3)
        assert span.attributes == {"policy": "nurse", "results": 3}

    def test_to_dict_and_render(self):
        with Span("q", policy="nurse") as span:
            pass
        out = span.to_dict()
        assert out["name"] == "q"
        assert out["duration_seconds"] >= 0.0
        assert out["attributes"] == {"policy": "nurse"}
        text = span.render()
        assert text.startswith("q  ")
        assert "policy=nurse" in text


class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("query") as query:
            with tracer.span("parse"):
                pass
            with tracer.span("evaluate") as ev:
                with tracer.span("compile"):
                    pass
                assert tracer.current is ev
        assert tracer.root is query
        assert [c.name for c in query.children] == ["parse", "evaluate"]
        assert [c.name for c in query.children[1].children] == ["compile"]
        assert tracer.current is None

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_to_dict(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("parse"):
                pass
        out = tracer.to_dict()
        assert len(out["spans"]) == 1
        assert out["spans"][0]["children"][0]["name"] == "parse"

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("query", policy="x")
        assert span is NULL_SPAN
        with span as inner:
            inner.set(anything="goes")
        assert span.duration == 0.0
        assert tracer.roots == []
        assert span.to_dict() == {}
        assert span.render() == ""

    def test_span_records_even_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom") as span:
                raise ValueError("x")
        except ValueError:
            pass
        assert span.ended is not None
        assert tracer.current is None
