"""Per-tenant workload profiling (:mod:`repro.obs.workload`)."""

import threading

import pytest

from repro.obs.workload import WorkloadProfiler
from repro.xpath.fingerprint import query_fingerprint


def _fp(query):
    return query_fingerprint(query)


class TestRecording:
    def test_same_shape_folds_into_one_entry(self):
        profiler = WorkloadProfiler()
        profiler.record_query(
            "nurse", "nurse", _fp('//patient[wardNo = "1"]'), 0.001
        )
        profiler.record_query(
            "nurse", "nurse", _fp('//patient[wardNo = "7"]'), 0.002
        )
        top = profiler.top("nurse")
        assert len(top) == 1
        assert top[0]["count"] == 2

    def test_entry_statistics(self):
        profiler = WorkloadProfiler()
        fp = _fp("//patient/name")
        profiler.record_query(
            "t", "p", fp, 0.010, visits=100, result_count=5, cache_hit=False
        )
        profiler.record_query(
            "t", "p", fp, 0.001, visits=0, result_count=5, cache_hit=True
        )
        (entry,) = profiler.top("t")
        assert entry["count"] == 2
        assert entry["visits"] == 100
        assert entry["results"] == 10
        assert entry["cache_hit_ratio"] == 0.5
        assert entry["shape"] == fp.shape
        assert entry["p95_ms"] > 0

    def test_tenants_are_isolated(self):
        profiler = WorkloadProfiler()
        profiler.record_query("a", "a", _fp("//x"), 0.001)
        profiler.record_query("b", "b", _fp("//y"), 0.001)
        assert profiler.tenants() == ["a", "b"]
        assert len(profiler.top("a")) == 1
        assert profiler.top("a")[0]["tenant"] == "a"

    def test_errors_and_denials(self):
        profiler = WorkloadProfiler()
        fp = _fp("//secret")
        profiler.record_error("t", "p", fp, denied=True)
        profiler.record_error("t", "p", fp, denied=False)
        report = profiler.report()["tenants"]["t"]
        assert report["denials"] == 1
        assert report["errors"] == 1
        assert report["queries"] == 2
        (entry,) = report["top"]
        assert entry["denials"] == 1
        assert entry["errors"] == 1

    def test_accepts_bare_digest_strings(self):
        profiler = WorkloadProfiler()
        profiler.record_query("t", "p", "abcd1234", 0.001)
        (entry,) = profiler.top("t")
        assert entry["fingerprint"] == "abcd1234"
        assert entry["shape"] == ""

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkloadProfiler(capacity=0)


class TestSpaceSaving:
    def test_cardinality_is_bounded(self):
        profiler = WorkloadProfiler(capacity=4)
        for index in range(50):
            profiler.record_query("t", "p", "shape-%02d" % index, 0.001)
        report = profiler.report()["tenants"]["t"]
        assert report["fingerprints"] == 4
        assert report["evictions"] == 50 - 4
        assert report["queries"] == 50

    def test_newcomer_inherits_victim_count_as_error(self):
        profiler = WorkloadProfiler(capacity=2)
        for _ in range(5):
            profiler.record_query("t", "p", "hot", 0.001)
        profiler.record_query("t", "p", "warm", 0.001)
        profiler.record_query("t", "p", "new", 0.001)  # evicts "warm"
        by_digest = {e["fingerprint"]: e for e in profiler.top("t")}
        assert set(by_digest) == {"hot", "new"}
        assert by_digest["hot"]["count"] == 5
        assert by_digest["hot"]["error_bound"] == 0
        # inherited warm's count (1) plus its own arrival
        assert by_digest["new"]["count"] == 2
        assert by_digest["new"]["error_bound"] == 1

    def test_heavy_hitter_survives_churn(self):
        profiler = WorkloadProfiler(capacity=8)
        for _ in range(100):
            profiler.record_query("t", "p", "heavy", 0.001)
        for index in range(200):  # 200 singletons churn the sketch
            profiler.record_query("t", "p", "one-off-%d" % index, 0.001)
        top = profiler.top("t", n=1)
        assert top[0]["fingerprint"] == "heavy"
        assert top[0]["count"] >= 100

    def test_per_tenant_budgets_are_independent(self):
        profiler = WorkloadProfiler(capacity=2)
        for index in range(10):
            profiler.record_query("a", "a", "shape-%d" % index, 0.001)
        profiler.record_query("b", "b", "only", 0.001)
        report = profiler.report()
        assert report["tenants"]["a"]["fingerprints"] == 2
        assert report["tenants"]["b"]["fingerprints"] == 1
        assert report["tenants"]["b"]["evictions"] == 0


class TestReporting:
    def test_top_orders_by_count_then_digest(self):
        profiler = WorkloadProfiler()
        for _ in range(3):
            profiler.record_query("t", "p", "bb", 0.001)
        profiler.record_query("t", "p", "aa", 0.001)
        profiler.record_query("t", "p", "cc", 0.001)
        digests = [e["fingerprint"] for e in profiler.top("t")]
        assert digests == ["bb", "aa", "cc"]

    def test_top_n_truncates(self):
        profiler = WorkloadProfiler()
        for index in range(5):
            profiler.record_query("t", "p", "s%d" % index, 0.001)
        assert len(profiler.top("t", n=2)) == 2
        assert len(profiler.top("t", n=0)) == 0

    def test_report_filters_by_tenant(self):
        profiler = WorkloadProfiler()
        profiler.record_query("a", "a", "x", 0.001)
        profiler.record_query("b", "b", "y", 0.001)
        report = profiler.report(tenant="a")
        assert list(report["tenants"]) == ["a"]
        assert profiler.report(tenant="missing")["tenants"] == {}

    def test_report_is_json_safe(self):
        import json

        profiler = WorkloadProfiler()
        profiler.record_query("t", "p", _fp("//patient"), 0.001)
        json.dumps(profiler.report())

    def test_stats_rollup(self):
        profiler = WorkloadProfiler(capacity=2)
        profiler.record_query("a", "a", "x", 0.001)
        profiler.record_error("b", "b", "y", denied=True)
        stats = profiler.stats()
        assert stats["tenants"] == 2
        assert stats["queries"] == 2
        assert stats["denials"] == 1
        assert stats["capacity"] == 2

    def test_reset(self):
        profiler = WorkloadProfiler()
        profiler.record_query("t", "p", "x", 0.001)
        profiler.reset()
        assert profiler.tenants() == []
        assert profiler.stats()["queries"] == 0

    def test_unknown_tenant_top_is_empty(self):
        assert WorkloadProfiler().top("nobody") == []


class TestConcurrency:
    def test_sixteen_threads_bounded_and_consistent(self):
        """16 threads hammer a shared profiler with overlapping and
        distinct shapes; totals must balance and every sketch must
        respect the capacity bound."""
        profiler = WorkloadProfiler(capacity=8)
        threads = 16
        per_thread = 200
        barrier = threading.Barrier(threads)

        def worker(worker_id):
            tenant = "tenant-%d" % (worker_id % 4)
            barrier.wait()
            for index in range(per_thread):
                if index % 10 == 0:
                    profiler.record_error(
                        tenant, tenant, "err-%d" % worker_id, denied=False
                    )
                else:
                    profiler.record_query(
                        tenant,
                        tenant,
                        "shape-%d" % (index % 20),
                        0.001,
                        cache_hit=index % 2 == 0,
                    )

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        stats = profiler.stats()
        assert stats["queries"] == threads * per_thread
        assert stats["errors"] == threads * (per_thread // 10)
        report = profiler.report()
        assert set(report["tenants"]) == {
            "tenant-%d" % i for i in range(4)
        }
        for bucket in report["tenants"].values():
            assert bucket["fingerprints"] <= profiler.capacity
            assert bucket["queries"] == 4 * per_thread
