"""Unit tests for :class:`repro.robustness.DegradationPolicy`."""

from repro.robustness import DegradationPolicy, SEAM_FALLBACKS
from repro.robustness.faults import SITES


class TestDefaults:
    def test_default_allows_every_known_seam(self):
        policy = DegradationPolicy()
        for seam in SEAM_FALLBACKS:
            assert policy.allows(seam)

    def test_strict_allows_none(self):
        policy = DegradationPolicy(strict=True)
        for seam in SEAM_FALLBACKS:
            assert not policy.allows(seam)

    def test_unknown_seam_never_degrades(self):
        assert not DegradationPolicy().allows("network.retry")
        assert not DegradationPolicy(strict=True).allows("network.retry")


class TestOverrides:
    def test_strict_with_store_build_carveout(self):
        policy = DegradationPolicy(strict=True, store_build=True)
        assert policy.allows("store.build")
        assert not policy.allows("index.build")
        assert not policy.allows("plan_cache.get")

    def test_disable_one_seam(self):
        policy = DegradationPolicy(index_build=False)
        assert not policy.allows("index.build")
        assert policy.allows("store.build")

    def test_plan_cache_controls_both_directions(self):
        policy = DegradationPolicy(plan_cache=False)
        assert not policy.allows("plan_cache.get")
        assert not policy.allows("plan_cache.put")


class TestFallbacks:
    def test_fallback_labels(self):
        policy = DegradationPolicy()
        assert policy.fallback("store.build") == "object-backend"
        assert policy.fallback("index.build") == "scan"
        assert policy.fallback("plan_cache.get") == "uncached-compile"
        assert policy.fallback("plan_cache.put") == "uncached-compile"
        assert policy.fallback("mystery") == "none"

    def test_every_degradable_site_has_a_fallback(self):
        # "materialize" is a fault-injection site but not a degradable
        # seam: there is no softer path for producing the view itself.
        for seam in SEAM_FALLBACKS:
            assert seam in SITES

    def test_repr_lists_degrading_seams(self):
        assert "store.build" in repr(DegradationPolicy())
        assert repr(DegradationPolicy(strict=True)) == (
            "DegradationPolicy(allows=[])"
        )
