"""Unit tests for the fault-injection harness."""

import pytest

from repro.errors import FaultInjected, error_code
from repro.obs import RingBufferSink
from repro.obs.events import QueryEvent
from repro.robustness import FaultPlan, FaultSpec, FaultySink
from repro.robustness.faults import SITES, active_plan, install, trip, uninstall


@pytest.fixture(autouse=True)
def clean_harness():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


class TestFaultSpec:
    def test_defaults_to_at_1(self):
        spec = FaultSpec("store.build")
        assert spec.at == 1
        assert spec.triggered(1)
        assert not spec.triggered(2)

    def test_at_n(self):
        spec = FaultSpec("store.build", at=3)
        assert [spec.triggered(i) for i in range(1, 6)] == [
            False, False, True, False, False,
        ]

    def test_every_n(self):
        spec = FaultSpec("store.build", every=2)
        assert [spec.triggered(i) for i in range(1, 6)] == [
            False, True, False, True, False,
        ]

    def test_rate_is_deterministic_per_seed(self):
        spec_a = FaultSpec("x", rate=0.5, seed=42)
        spec_b = FaultSpec("x", rate=0.5, seed=42)
        first = [spec_a.triggered(i) for i in range(20)]
        second = [spec_b.triggered(i) for i in range(20)]
        assert first == second
        assert any(first) and not all(first)

    def test_rate_reset_replays(self):
        spec = FaultSpec("x", rate=0.5, seed=7)
        first = [spec.triggered(i) for i in range(20)]
        spec.reset()
        assert [spec.triggered(i) for i in range(20)] == first

    def test_one_trigger_only(self):
        with pytest.raises(ValueError):
            FaultSpec("x", at=1, every=2)
        with pytest.raises(ValueError):
            FaultSpec("x", every=2, rate=0.1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("x", kind="explode")

    def test_fire_raises_fault_injected(self):
        spec = FaultSpec("store.build")
        with pytest.raises(FaultInjected) as excinfo:
            spec.fire()
        assert error_code(excinfo.value) == "E_FAULT"
        assert "store.build" in str(excinfo.value)
        assert spec.fired == 1

    def test_fire_custom_error(self):
        boom = RuntimeError("boom")
        spec = FaultSpec("x", error=boom)
        with pytest.raises(RuntimeError, match="boom"):
            spec.fire()

    def test_latency_kind_sleeps_not_raises(self):
        spec = FaultSpec("x", kind="latency", latency_seconds=0.001)
        spec.fire()  # must not raise
        assert spec.fired == 1


class TestFaultPlan:
    def test_counts_calls_per_site(self):
        plan = FaultPlan(name="counting")
        plan.fire("store.build")
        plan.fire("store.build")
        plan.fire("index.build")
        assert plan.calls("store.build") == 2
        assert plan.calls("index.build") == 1
        assert plan.calls("materialize") == 0

    def test_fires_matching_spec_only(self):
        plan = FaultPlan(FaultSpec("index.build", at=1))
        plan.fire("store.build")  # different site: no effect
        with pytest.raises(FaultInjected):
            plan.fire("index.build")
        assert plan.fired() == 1

    def test_reset_replays_identically(self):
        plan = FaultPlan(FaultSpec("store.build", at=2))
        plan.fire("store.build")
        with pytest.raises(FaultInjected):
            plan.fire("store.build")
        plan.reset()
        assert plan.calls("store.build") == 0
        plan.fire("store.build")
        with pytest.raises(FaultInjected):
            plan.fire("store.build")

    def test_add_returns_self_for_chaining(self):
        plan = FaultPlan().add(FaultSpec("a")).add(FaultSpec("b"))
        assert len(plan.specs) == 2

    def test_sites_registry_names_the_engine_seams(self):
        assert set(SITES) == {
            "store.build",
            "index.build",
            "plan_cache.get",
            "plan_cache.put",
            "materialize",
            "admission.admit",
            "serving.resolve",
            "serving.execute",
            "httpd.write",
        }


class TestInstallation:
    def test_trip_is_noop_without_plan(self):
        assert active_plan() is None
        trip("store.build")  # must not raise

    def test_install_and_uninstall(self):
        plan = FaultPlan(FaultSpec("store.build", at=1))
        install(plan)
        assert active_plan() is plan
        with pytest.raises(FaultInjected):
            trip("store.build")
        uninstall()
        assert active_plan() is None
        trip("store.build")  # no longer armed

    def test_context_manager(self):
        plan = FaultPlan(FaultSpec("materialize", at=1))
        with plan:
            assert active_plan() is plan
            with pytest.raises(FaultInjected):
                trip("materialize")
        assert active_plan() is None

    def test_context_manager_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with FaultPlan():
                raise RuntimeError("inside")
        assert active_plan() is None


class TestFaultySink:
    def test_raises_immediately_by_default(self):
        sink = FaultySink()
        with pytest.raises(FaultInjected, match="injected sink failure"):
            sink.emit(QueryEvent())
        assert sink.raised == 1
        assert sink.emitted == 0

    def test_after_n_successes(self):
        sink = FaultySink(after=2)
        sink.emit(QueryEvent())
        sink.emit(QueryEvent())
        with pytest.raises(FaultInjected):
            sink.emit(QueryEvent())
        assert sink.emitted == 2
        assert sink.raised == 1

    def test_custom_error(self):
        sink = FaultySink(error=OSError("disk full"))
        with pytest.raises(OSError, match="disk full"):
            sink.emit(QueryEvent())

    def test_is_an_event_sink(self):
        from repro.obs.events import EventSink

        assert isinstance(FaultySink(), EventSink)
        assert isinstance(RingBufferSink(), EventSink)
