"""Unit tests for :mod:`repro.robustness.governor`."""

import pytest

from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    ResourceError,
    SecurityError,
    error_code,
)
from repro.robustness import NO_LIMITS, Budget, QueryLimits, TICK_STRIDE


class FakeClock:
    """A manually advanced clock for deterministic deadline tests."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestQueryLimits:
    def test_defaults_are_unlimited(self):
        limits = QueryLimits()
        assert limits.unlimited
        assert limits.deadline_seconds is None
        assert limits.max_results is None
        assert limits.max_visits is None
        assert limits.max_frontier_rows is None

    def test_no_limits_singleton(self):
        assert NO_LIMITS.unlimited
        assert NO_LIMITS == QueryLimits()

    def test_any_field_clears_unlimited(self):
        assert not QueryLimits(deadline_seconds=1.0).unlimited
        assert not QueryLimits(max_results=1).unlimited
        assert not QueryLimits(max_visits=1).unlimited
        assert not QueryLimits(max_frontier_rows=1).unlimited

    def test_frozen(self):
        limits = QueryLimits(max_results=5)
        with pytest.raises(Exception):
            limits.max_results = 10

    @pytest.mark.parametrize("value", [0, -1, "10", False, True])
    def test_rejects_bad_integer_limits(self, value):
        for field in ("max_results", "max_visits", "max_frontier_rows"):
            with pytest.raises(SecurityError):
                QueryLimits(**{field: value})

    @pytest.mark.parametrize("value", [0, -0.5, "1.0", True])
    def test_rejects_bad_deadline(self, value):
        with pytest.raises(SecurityError):
            QueryLimits(deadline_seconds=value)

    def test_float_visits_rejected(self):
        with pytest.raises(SecurityError):
            QueryLimits(max_visits=1.5)

    def test_float_deadline_accepted(self):
        assert QueryLimits(deadline_seconds=0.05).deadline_seconds == 0.05

    def test_budget_mints_live_token(self):
        budget = QueryLimits(max_visits=3).budget()
        assert isinstance(budget, Budget)
        assert budget.limits.max_visits == 3

    def test_hashable_for_cache_keys(self):
        assert hash(QueryLimits(max_results=1)) == hash(
            QueryLimits(max_results=1)
        )


class TestBudgetDeadline:
    def test_no_deadline_means_no_deadline_at(self):
        budget = Budget(QueryLimits(), clock=FakeClock())
        assert budget.deadline_at is None
        assert budget.remaining() is None

    def test_checkpoint_passes_before_deadline(self):
        clock = FakeClock()
        budget = Budget(QueryLimits(deadline_seconds=1.0), clock=clock)
        clock.advance(0.99)
        budget.checkpoint()  # must not raise

    def test_checkpoint_raises_after_deadline(self):
        clock = FakeClock()
        budget = Budget(QueryLimits(deadline_seconds=1.0), clock=clock)
        clock.advance(1.5)
        with pytest.raises(DeadlineExceeded) as excinfo:
            budget.checkpoint()
        error = excinfo.value
        assert error.code == "E_DEADLINE"
        assert error_code(error) == "E_DEADLINE"
        assert error.deadline_seconds == 1.0
        assert error.elapsed_seconds == pytest.approx(1.5)
        assert "1000.0 ms deadline" in str(error)

    def test_deadline_error_is_resource_error(self):
        clock = FakeClock()
        budget = Budget(QueryLimits(deadline_seconds=0.1), clock=clock)
        clock.advance(1.0)
        with pytest.raises(ResourceError):
            budget.checkpoint()

    def test_elapsed_and_remaining(self):
        clock = FakeClock(now=10.0)
        budget = Budget(QueryLimits(deadline_seconds=2.0), clock=clock)
        clock.advance(0.5)
        assert budget.elapsed() == pytest.approx(0.5)
        assert budget.remaining() == pytest.approx(1.5)
        clock.advance(2.0)
        assert budget.remaining() == pytest.approx(-0.5)


class TestBudgetCounters:
    def test_visits_within_budget(self):
        budget = Budget(QueryLimits(max_visits=10), clock=FakeClock())
        budget.checkpoint(visits=10)  # at the bound is fine

    def test_visits_over_budget(self):
        budget = Budget(QueryLimits(max_visits=10), clock=FakeClock())
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.checkpoint(visits=11)
        error = excinfo.value
        assert error.code == "E_BUDGET"
        assert error.dimension == "visits"
        assert error.spent == 11
        assert error.limit == 10
        assert "max_visits=10" in str(error)

    def test_frontier_over_budget(self):
        budget = Budget(QueryLimits(max_frontier_rows=4), clock=FakeClock())
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.checkpoint(frontier=5)
        assert excinfo.value.dimension == "frontier"
        assert "max_frontier_rows=4" in str(excinfo.value)

    def test_frontier_checked_before_visits(self):
        budget = Budget(
            QueryLimits(max_visits=1, max_frontier_rows=1), clock=FakeClock()
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.checkpoint(visits=2, frontier=2)
        assert excinfo.value.dimension == "frontier"

    def test_charge_results(self):
        budget = Budget(QueryLimits(max_results=3), clock=FakeClock())
        budget.charge_results(3)  # at the bound is fine
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.charge_results(4)
        error = excinfo.value
        assert error.dimension == "results"
        assert error.spent == 4
        assert error.limit == 3

    def test_charge_results_noop_without_limit(self):
        budget = Budget(QueryLimits(max_visits=1), clock=FakeClock())
        budget.charge_results(10**9)  # no max_results -> never raises


class TestBudgetTick:
    def test_tick_strides_the_clock_check(self):
        clock = FakeClock()
        budget = Budget(QueryLimits(deadline_seconds=1.0), clock=clock)
        clock.advance(2.0)  # already overdue
        for _ in range(TICK_STRIDE - 1):
            budget.tick()  # no checkpoint yet: stride not reached
        with pytest.raises(DeadlineExceeded):
            budget.tick()  # the TICK_STRIDE-th call checks

    def test_tick_without_limits_never_raises(self):
        budget = Budget(QueryLimits(), clock=FakeClock())
        for _ in range(3 * TICK_STRIDE):
            budget.tick()


class TestCancellation:
    def test_cancel_raises_at_next_checkpoint(self):
        budget = Budget(QueryLimits(), clock=FakeClock())
        budget.checkpoint()
        budget.cancel()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.checkpoint()
        error = excinfo.value
        assert error.dimension == "cancelled"
        assert str(error).endswith("query cancelled")

    def test_cancel_reason_in_message(self):
        budget = Budget(QueryLimits(), clock=FakeClock())
        budget.cancel("caller gave up")
        with pytest.raises(BudgetExceeded, match="caller gave up"):
            budget.checkpoint()

    def test_cancel_beats_other_dimensions(self):
        budget = Budget(QueryLimits(max_visits=1), clock=FakeClock())
        budget.cancel()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.checkpoint(visits=100)
        assert excinfo.value.dimension == "cancelled"


class TestSleep:
    def test_sleep_returns_after_duration(self):
        budget = Budget(QueryLimits())
        budget.sleep(0.0)  # degenerate nap completes

    def test_sleep_honours_deadline(self):
        clock = FakeClock()
        budget = Budget(QueryLimits(deadline_seconds=0.5), clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            budget.sleep(10.0)


class TestRepr:
    def test_budget_repr(self):
        budget = Budget(QueryLimits(max_results=2), clock=FakeClock())
        text = repr(budget)
        assert "Budget(" in text
        assert "cancelled=False" in text
