"""Per-tenant admission control: slots, queue bounds, queue deadlines."""

import threading
import time

import pytest

from repro.errors import AdmissionRejected, DeadlineExceeded
from repro.serving.admission import AdmissionController, TenantPolicy


class TestTenantPolicy:
    def test_defaults(self):
        policy = TenantPolicy()
        assert policy.max_concurrent >= 1
        assert policy.max_queue_depth >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(max_concurrent=0)
        with pytest.raises(ValueError):
            TenantPolicy(max_queue_depth=-1)


class TestAdmission:
    def test_admit_releases_slot(self):
        controller = AdmissionController(TenantPolicy(max_concurrent=1))
        with controller.admit("t"):
            assert controller.running("t") == 1
        assert controller.running("t") == 0
        # the slot is reusable
        with controller.admit("t"):
            pass

    def test_tenants_are_isolated(self):
        controller = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue_depth=0)
        )
        with controller.admit("a"):
            # tenant b still has its own slot while a's is busy
            with controller.admit("b"):
                assert controller.running() == 2

    def test_queue_overflow_rejected(self):
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=0,
                queue_deadline_seconds=5.0,
            )
        )
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with controller.admit("t"):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            # slot busy, zero queue depth allowed -> immediate rejection
            with pytest.raises(AdmissionRejected) as excinfo:
                with controller.admit("t"):
                    pass  # pragma: no cover - never admitted
            assert excinfo.value.code == "E_ADMISSION"
            assert excinfo.value.tenant == "t"
        finally:
            release.set()
            thread.join()

    def test_queue_deadline_raises_e_deadline(self):
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=0.05,
            )
        )
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with controller.admit("t"):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded) as excinfo:
                with controller.admit("t"):
                    pass  # pragma: no cover - never admitted
            assert excinfo.value.code == "E_DEADLINE"
            # waited roughly the queue deadline, not forever
            assert time.monotonic() - started < 2.0
            # waiter accounting rolled back
            assert controller.queue_depth("t") == 0
        finally:
            release.set()
            thread.join()

    def test_deadline_accounts_time_already_queued(self):
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=0.2,
            )
        )
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with controller.admit("t"):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            # enqueued long ago -> the deadline has already lapsed
            with pytest.raises(DeadlineExceeded):
                with controller.admit(
                    "t", enqueued_at=time.monotonic() - 10.0
                ):
                    pass  # pragma: no cover - never admitted
        finally:
            release.set()
            thread.join()

    def test_per_tenant_policy_override(self):
        controller = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue_depth=0)
        )
        controller.set_policy(
            "big", TenantPolicy(max_concurrent=3, max_queue_depth=0)
        )
        with controller.admit("big"):
            with controller.admit("big"):
                with controller.admit("big"):
                    assert controller.running("big") == 3
