"""Per-tenant admission control: slots, queue bounds, queue deadlines,
and priority load shedding."""

import threading
import time

import pytest

from repro.errors import AdmissionRejected, DeadlineExceeded, RequestShed
from repro.serving.admission import AdmissionController, TenantPolicy
from repro.serving.resilience import (
    CRITICAL,
    DEFAULT,
    SHEDDABLE,
    OverloadDetector,
)


class TestTenantPolicy:
    def test_defaults(self):
        policy = TenantPolicy()
        assert policy.max_concurrent >= 1
        assert policy.max_queue_depth >= 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(max_concurrent=0)
        with pytest.raises(ValueError):
            TenantPolicy(max_queue_depth=-1)


class TestAdmission:
    def test_admit_releases_slot(self):
        controller = AdmissionController(TenantPolicy(max_concurrent=1))
        with controller.admit("t"):
            assert controller.running("t") == 1
        assert controller.running("t") == 0
        # the slot is reusable
        with controller.admit("t"):
            pass

    def test_tenants_are_isolated(self):
        controller = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue_depth=0)
        )
        with controller.admit("a"):
            # tenant b still has its own slot while a's is busy
            with controller.admit("b"):
                assert controller.running() == 2

    def test_queue_overflow_rejected(self):
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=0,
                queue_deadline_seconds=5.0,
            )
        )
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with controller.admit("t"):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            # slot busy, zero queue depth allowed -> immediate rejection
            with pytest.raises(AdmissionRejected) as excinfo:
                with controller.admit("t"):
                    pass  # pragma: no cover - never admitted
            assert excinfo.value.code == "E_ADMISSION"
            assert excinfo.value.tenant == "t"
        finally:
            release.set()
            thread.join()

    def test_queue_deadline_raises_e_deadline(self):
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=0.05,
            )
        )
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with controller.admit("t"):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded) as excinfo:
                with controller.admit("t"):
                    pass  # pragma: no cover - never admitted
            assert excinfo.value.code == "E_DEADLINE"
            # waited roughly the queue deadline, not forever
            assert time.monotonic() - started < 2.0
            # waiter accounting rolled back
            assert controller.queue_depth("t") == 0
        finally:
            release.set()
            thread.join()

    def test_deadline_accounts_time_already_queued(self):
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=0.2,
            )
        )
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with controller.admit("t"):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            # enqueued long ago -> the deadline has already lapsed
            with pytest.raises(DeadlineExceeded):
                with controller.admit(
                    "t", enqueued_at=time.monotonic() - 10.0
                ):
                    pass  # pragma: no cover - never admitted
        finally:
            release.set()
            thread.join()

    def test_per_tenant_policy_override(self):
        controller = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue_depth=0)
        )
        controller.set_policy(
            "big", TenantPolicy(max_concurrent=3, max_queue_depth=0)
        )
        with controller.admit("big"):
            with controller.admit("big"):
                with controller.admit("big"):
                    assert controller.running("big") == 3


def _saturated_detector(**kw):
    """A detector already past both shedding thresholds."""
    detector = OverloadDetector(alpha=1.0, **kw)
    detector.observe(1.0)
    return detector


class TestLoadShedding:
    def holder(self, controller, tenant="t"):
        """Occupy the tenant's single slot from a background thread;
        returns (release, thread) with the slot already held."""
        release = threading.Event()
        entered = threading.Event()

        def hold():
            with controller.admit(tenant):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=hold)
        thread.start()
        assert entered.wait(timeout=5)
        return release, thread

    def test_no_detector_means_no_shedding(self):
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=0.05,
            )
        )
        release, thread = self.holder(controller)
        try:
            # waits then hits the queue deadline — never E_SHED
            with pytest.raises(DeadlineExceeded):
                with controller.admit("t", criticality=SHEDDABLE):
                    pass  # pragma: no cover - never admitted
        finally:
            release.set()
            thread.join()

    def test_free_slot_admits_even_under_overload(self):
        controller = AdmissionController(
            TenantPolicy(max_concurrent=1),
            overload=_saturated_detector(),
        )
        # idle slots: shedding must not touch requests that don't wait
        with controller.admit("t", criticality=SHEDDABLE):
            pass
        assert controller.shed_counts()[SHEDDABLE] == 0

    def test_waiting_sheddable_request_is_shed(self):
        detector = OverloadDetector(alpha=1.0)
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=5.0,
            ),
            overload=detector,
        )
        release, thread = self.holder(controller)
        # saturate after the holder's own (fast-path) admit observed
        detector.observe(1.0)
        try:
            started = time.monotonic()
            with pytest.raises(RequestShed) as excinfo:
                with controller.admit("t", criticality=SHEDDABLE):
                    pass  # pragma: no cover - never admitted
            # shed immediately, not after waiting out the deadline
            assert time.monotonic() - started < 1.0
            error = excinfo.value
            assert error.code == "E_SHED"
            assert error.tenant == "t"
            assert error.criticality == SHEDDABLE
            assert error.utilization == pytest.approx(1.0)
            assert error.retry_after_seconds > 0
            assert controller.shed_counts()[SHEDDABLE] == 1
        finally:
            release.set()
            thread.join()

    def test_critical_is_never_shed(self):
        detector = OverloadDetector(alpha=1.0)
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=0.05,
            ),
            overload=detector,
        )
        release, thread = self.holder(controller)
        detector.observe(1.0)
        try:
            # critical rides the queue to its deadline instead
            with pytest.raises(DeadlineExceeded):
                with controller.admit("t", criticality=CRITICAL):
                    pass  # pragma: no cover - never admitted
            assert controller.shed_counts()[CRITICAL] == 0
        finally:
            release.set()
            thread.join()

    def test_default_shed_only_past_higher_threshold(self):
        detector = OverloadDetector(
            alpha=1.0, shed_sheddable_at=0.5, shed_default_at=0.85
        )
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=0.05,
            ),
            overload=detector,
        )
        release, thread = self.holder(controller)
        detector.observe(0.6)  # between the two thresholds
        try:
            with pytest.raises(RequestShed):
                with controller.admit("t", criticality=SHEDDABLE):
                    pass  # pragma: no cover
            with pytest.raises(DeadlineExceeded):
                with controller.admit("t", criticality=DEFAULT):
                    pass  # pragma: no cover
        finally:
            release.set()
            thread.join()

    def test_detector_fed_by_rejections_and_deadline_misses(self):
        detector = OverloadDetector(alpha=0.5)
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=0,
                queue_deadline_seconds=5.0,
            ),
            overload=detector,
        )
        release, thread = self.holder(controller)
        try:
            # only the holder's near-zero fast-path wait so far
            assert detector.utilization() < 0.01
            with pytest.raises(AdmissionRejected) as excinfo:
                with controller.admit("t"):
                    pass  # pragma: no cover
            # queue-full counted as a saturated sample, and the
            # rejection carries the detector's back-off hint
            assert detector.utilization() == pytest.approx(0.5, abs=0.01)
            assert excinfo.value.retry_after_seconds > 0
        finally:
            release.set()
            thread.join()


class TestAccountingUnderFailure:
    """Regression: no slot leaks or negative drift when admitted work
    raises, is abandoned, or races shutdown."""

    def test_exception_in_body_releases_slot_and_gauge(self):
        controller = AdmissionController(TenantPolicy(max_concurrent=1))
        with pytest.raises(RuntimeError):
            with controller.admit("t"):
                raise RuntimeError("worker died")
        assert controller.running("t") == 0
        with controller.admit("t"):  # the slot is reusable
            pass

    def test_shed_request_leaves_no_accounting_residue(self):
        detector = OverloadDetector(alpha=1.0)
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=4,
                queue_deadline_seconds=5.0,
            ),
            overload=detector,
        )
        release = threading.Event()
        entered = threading.Event()

        def hold():
            with controller.admit("t"):
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=hold)
        thread.start()
        try:
            assert entered.wait(timeout=5)
            detector.observe(1.0)
            for _ in range(5):
                with pytest.raises(RequestShed):
                    with controller.admit("t", criticality=SHEDDABLE):
                        pass  # pragma: no cover
            assert controller.queue_depth("t") == 0
            assert controller.running("t") == 1  # just the holder
        finally:
            release.set()
            thread.join()
        assert controller.running("t") == 0

    def test_contended_mixed_outcomes_never_drift(self):
        """Hammer one tenant from many threads with a mix of successes
        and body failures; waiting/running must return to zero and the
        slots must still admit max_concurrent afterwards."""
        controller = AdmissionController(
            TenantPolicy(
                max_concurrent=2,
                max_queue_depth=32,
                queue_deadline_seconds=5.0,
            )
        )
        errors = []

        def worker(index):
            for turn in range(10):
                try:
                    with controller.admit("t"):
                        if (index + turn) % 3 == 0:
                            raise RuntimeError("boom")
                except RuntimeError:
                    pass
                except Exception as error:  # pragma: no cover
                    errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert controller.running("t") == 0
        assert controller.queue_depth("t") == 0
        # both slots still available — no leak under contention
        with controller.admit("t"):
            with controller.admit("t"):
                assert controller.running("t") == 2
