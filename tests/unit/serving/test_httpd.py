"""The HTTP front end: trace header round-trip and debug endpoints."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.engine import SecureQueryEngine
from repro.serving.httpd import make_http_server
from repro.serving.server import EngineCatalog, QueryServer
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture(scope="module")
def served():
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    catalog = EngineCatalog().add(
        "hospital", engine, hospital_document(seed=7, max_branch=4)
    )
    with QueryServer(catalog, workers=2) as server:
        httpd = make_http_server(server, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            yield server, "http://127.0.0.1:%d" % httpd.server_address[1]
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as reply:
            return reply.status, dict(reply.headers), json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _post(url, payload, headers=None):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers=dict(headers or {}), method="POST"
    )
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, dict(reply.headers), json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestQueryEndpoint:
    def test_query_minted_trace_echoed_in_header_and_body(self, served):
        _, base = served
        status, headers, body = _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        assert status == 200
        assert body["ok"]
        assert len(body["trace_id"]) == 32
        assert headers["X-Repro-Trace"] == body["trace_id"]

    def test_client_trace_header_adopted(self, served):
        _, base = served
        trace_id = "feed" * 8
        status, headers, body = _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
            headers={"X-Repro-Trace": "%s-00000000000000aa" % trace_id},
        )
        assert status == 200
        assert body["trace_id"] == trace_id
        assert headers["X-Repro-Trace"] == trace_id

    def test_malformed_body_is_400(self, served):
        _, base = served
        request = urllib.request.Request(
            base + "/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400


class TestDebugTraces:
    def test_posted_query_findable_by_trace_id(self, served):
        _, base = served
        _, _, body = _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        status, _, payload = _get(
            base + "/debug/traces?trace_id=" + body["trace_id"]
        )
        assert status == 200
        assert payload["enabled"]
        assert len(payload["traces"]) == 1
        trace = payload["traces"][0]
        assert trace["trace_id"] == body["trace_id"]
        assert trace["spans"]["name"] == "request"

    def test_unknown_trace_id_is_empty_not_error(self, served):
        _, base = served
        status, _, payload = _get(
            base + "/debug/traces?trace_id=" + "0" * 32
        )
        assert status == 200
        assert payload["traces"] == []

    def test_listing_with_filters(self, served):
        _, base = served
        _post(
            base + "/query",
            {
                "policy": "nurse",
                "query": "//patient",
                "document": "hospital",
                "tenant": "ward2",
            },
        )
        status, _, payload = _get(
            base + "/debug/traces?tenant=ward2&n=1"
        )
        assert status == 200
        assert payload["stats"]["recorded"] >= 1
        assert len(payload["traces"]) == 1
        assert payload["traces"][0]["tenant"] == "ward2"

    def test_bad_n_parameter_falls_back_to_default(self, served):
        _, base = served
        status, _, payload = _get(base + "/debug/traces?n=bogus")
        assert status == 200
        assert "traces" in payload


class TestDebugSLO:
    def test_slo_payload_has_burn_windows(self, served):
        _, base = served
        _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        status, _, payload = _get(base + "/debug/slo")
        assert status == 200
        assert payload["enabled"]
        assert payload["objective"]["target"] == pytest.approx(0.99)
        tenant = payload["tenants"]["nurse"]
        assert tenant["requests"] >= 1
        assert set(tenant["fast"]) == {
            "window_seconds",
            "requests",
            "bad",
            "bad_fraction",
            "burn_rate",
        }


class TestRouting:
    def test_unknown_path_is_404(self, served):
        _, base = served
        status, _, body = _get(base + "/debug/nope")
        assert status == 404
        assert not body["ok"]

    def test_metrics_includes_labeled_serving_series(self, served):
        server, base = served
        from repro.obs.metrics import enable_metrics, metrics_registry

        enable_metrics()
        try:
            _post(
                base + "/query",
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                },
            )
            with urllib.request.urlopen(
                base + "/metrics", timeout=10
            ) as reply:
                text = reply.read().decode("utf-8")
            assert "repro_serving_latency_seconds_bucket{" in text
            assert 'repro_slo_requests_total{tenant="nurse"}' in text
        finally:
            from repro.obs.metrics import disable_metrics

            disable_metrics()
            metrics_registry().reset()


class TestDisabledTracing:
    def test_debug_endpoints_report_disabled(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        catalog = EngineCatalog().add(
            "hospital", engine, hospital_document(seed=7, max_branch=4)
        )
        with QueryServer(catalog, workers=1, tracing=False) as server:
            httpd = make_http_server(server, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            base = "http://127.0.0.1:%d" % httpd.server_address[1]
            try:
                _, _, traces = _get(base + "/debug/traces")
                _, _, by_id = _get(
                    base + "/debug/traces?trace_id=" + "0" * 32
                )
                _, _, slo = _get(base + "/debug/slo")
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=5)
        assert traces == {"enabled": False, "stats": {}, "traces": []}
        assert by_id == {"enabled": False, "traces": []}
        assert slo["enabled"] is False
