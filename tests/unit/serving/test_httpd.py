"""The HTTP front end: trace header round-trip and debug endpoints."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.engine import SecureQueryEngine
from repro.serving.httpd import make_http_server
from repro.serving.server import EngineCatalog, QueryServer
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture(scope="module")
def served():
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    catalog = EngineCatalog().add(
        "hospital", engine, hospital_document(seed=7, max_branch=4)
    )
    with QueryServer(catalog, workers=2) as server:
        httpd = make_http_server(server, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            yield server, "http://127.0.0.1:%d" % httpd.server_address[1]
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as reply:
            return reply.status, dict(reply.headers), json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _post(url, payload, headers=None):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers=dict(headers or {}), method="POST"
    )
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, dict(reply.headers), json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestQueryEndpoint:
    def test_query_minted_trace_echoed_in_header_and_body(self, served):
        _, base = served
        status, headers, body = _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        assert status == 200
        assert body["ok"]
        assert len(body["trace_id"]) == 32
        assert headers["X-Repro-Trace"] == body["trace_id"]

    def test_client_trace_header_adopted(self, served):
        _, base = served
        trace_id = "feed" * 8
        status, headers, body = _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
            headers={"X-Repro-Trace": "%s-00000000000000aa" % trace_id},
        )
        assert status == 200
        assert body["trace_id"] == trace_id
        assert headers["X-Repro-Trace"] == trace_id

    def test_malformed_body_is_400(self, served):
        _, base = served
        request = urllib.request.Request(
            base + "/query", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=10)
        assert caught.value.code == 400


class TestDebugTraces:
    def test_posted_query_findable_by_trace_id(self, served):
        _, base = served
        _, _, body = _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        status, _, payload = _get(
            base + "/debug/traces?trace_id=" + body["trace_id"]
        )
        assert status == 200
        assert payload["enabled"]
        assert len(payload["traces"]) == 1
        trace = payload["traces"][0]
        assert trace["trace_id"] == body["trace_id"]
        assert trace["spans"]["name"] == "request"
        # the root span carries the query's workload fingerprint so a
        # trace can be joined to its /debug/workload entry
        assert trace["fingerprint"]
        _, _, workload = _get(base + "/debug/workload?tenant=nurse")
        digests = {
            entry["fingerprint"]
            for entry in workload["tenants"]["nurse"]["top"]
        }
        assert trace["fingerprint"] in digests

    def test_unknown_trace_id_is_empty_not_error(self, served):
        _, base = served
        status, _, payload = _get(
            base + "/debug/traces?trace_id=" + "0" * 32
        )
        assert status == 200
        assert payload["traces"] == []

    def test_listing_with_filters(self, served):
        _, base = served
        _post(
            base + "/query",
            {
                "policy": "nurse",
                "query": "//patient",
                "document": "hospital",
                "tenant": "ward2",
            },
        )
        status, _, payload = _get(
            base + "/debug/traces?tenant=ward2&n=1"
        )
        assert status == 200
        assert payload["stats"]["recorded"] >= 1
        assert len(payload["traces"]) == 1
        assert payload["traces"][0]["tenant"] == "ward2"

    def test_bad_n_parameter_falls_back_to_default(self, served):
        _, base = served
        status, _, payload = _get(base + "/debug/traces?n=bogus")
        assert status == 200
        assert "traces" in payload


class TestDebugSLO:
    def test_slo_payload_has_burn_windows(self, served):
        _, base = served
        _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        status, _, payload = _get(base + "/debug/slo")
        assert status == 200
        assert payload["enabled"]
        assert payload["objective"]["target"] == pytest.approx(0.99)
        tenant = payload["tenants"]["nurse"]
        assert tenant["requests"] >= 1
        assert set(tenant["fast"]) == {
            "window_seconds",
            "requests",
            "bad",
            "bad_fraction",
            "burn_rate",
        }


class TestRouting:
    def test_unknown_path_is_404(self, served):
        _, base = served
        status, _, body = _get(base + "/debug/nope")
        assert status == 404
        assert not body["ok"]

    def test_metrics_includes_labeled_serving_series(self, served):
        server, base = served
        from repro.obs.metrics import enable_metrics, metrics_registry

        enable_metrics()
        try:
            _post(
                base + "/query",
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                },
            )
            with urllib.request.urlopen(
                base + "/metrics", timeout=10
            ) as reply:
                text = reply.read().decode("utf-8")
            assert "repro_serving_latency_seconds_bucket{" in text
            assert 'repro_slo_requests_total{tenant="nurse"}' in text
        finally:
            from repro.obs.metrics import disable_metrics

            disable_metrics()
            metrics_registry().reset()


class TestDebugWorkload:
    def test_served_query_shows_up_in_workload(self, served):
        _, base = served
        _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        status, _, payload = _get(base + "/debug/workload")
        assert status == 200
        assert payload["enabled"]
        assert payload["capacity"] >= 1
        bucket = payload["tenants"]["nurse"]
        assert bucket["queries"] >= 1
        entry = bucket["top"][0]
        assert set(entry) >= {
            "fingerprint",
            "shape",
            "count",
            "p50_ms",
            "p95_ms",
            "cache_hit_ratio",
        }

    def test_tenant_and_n_filters(self, served):
        _, base = served
        for query in ("//patient", "//patient/name", "//patient/parent"):
            _post(
                base + "/query",
                {"policy": "nurse", "query": query, "document": "hospital"},
            )
        status, _, payload = _get(base + "/debug/workload?tenant=nurse&n=1")
        assert status == 200
        assert list(payload["tenants"]) == ["nurse"]
        bucket = payload["tenants"]["nurse"]
        assert len(bucket["top"]) == 1
        assert bucket["fingerprints"] >= 3
        status, _, missing = _get(base + "/debug/workload?tenant=nobody")
        assert status == 200
        assert missing["tenants"] == {}

    def test_failed_query_counted(self, served):
        _, base = served
        status, _, body = _post(
            base + "/query",
            {
                "policy": "nurse",
                "query": "//patient[",
                "document": "hospital",
            },
        )
        assert status == 400
        _, _, payload = _get(base + "/debug/workload?tenant=nurse")
        assert payload["tenants"]["nurse"]["errors"] >= 1


class TestDebugCachez:
    def test_cache_report_per_engine(self, served):
        _, base = served
        _post(
            base + "/query",
            {"policy": "nurse", "query": "//patient", "document": "hospital"},
        )
        status, _, payload = _get(base + "/debug/cachez")
        assert status == 200
        report = payload["engines"]["hospital"]
        assert report["plan_cache"]["entries"] >= 1
        assert report["plan_cache"]["bytes"] > 0
        assert report["plan_cache"]["distinct_fingerprints"] >= 1
        assert {
            "plan_cache",
            "node_tables",
            "document_indexes",
            "materialized_views",
            "total_bytes",
        } <= set(report)
        assert payload["total_bytes"] >= report["total_bytes"]


class TestDebugVars:
    def test_vars_payload(self, served):
        server, base = served
        status, _, payload = _get(base + "/debug/vars")
        assert status == 200
        import repro

        assert payload["version"] == repro.__version__
        assert payload["uptime_seconds"] >= 0
        assert payload["workers"] == 2
        assert payload["documents"] == ["hospital"]
        assert payload["tracing"] is True
        assert payload["profiling"] is True
        assert payload["queue_depth"] >= 0
        assert isinstance(payload["admission"], dict)
        assert payload["cache_bytes"] >= 0
        assert payload["workload"]["capacity"] >= 1


class TestWorkloadUnderConcurrentReplay:
    def test_top_k_under_sixteen_thread_mixed_tenant_replay(self):
        """The acceptance scenario: a 16-client mixed-tenant replay,
        then ``/debug/workload?tenant=X&n=K`` serves bounded top-K."""
        from repro.serving.replay import (
            mixed_workload,
            replay,
            standard_catalog,
        )

        catalog = standard_catalog(seed=0)
        requests = mixed_workload(repetitions=2, seed=0)
        with QueryServer(catalog, workers=4) as server:
            httpd = make_http_server(server, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            base = "http://127.0.0.1:%d" % httpd.server_address[1]
            try:
                stats = replay(server, requests, clients=16)
                assert not stats["errors"], stats["errors"]
                status, _, payload = _get(base + "/debug/workload")
                tenants = set(payload["tenants"])
                for tenant in sorted(tenants):
                    status, _, top2 = _get(
                        base + "/debug/workload?tenant=%s&n=2" % tenant
                    )
                    assert status == 200
                    bucket = top2["tenants"][tenant]
                    assert len(bucket["top"]) <= 2
                    assert (
                        bucket["fingerprints"] <= payload["capacity"]
                    )
                    for entry in bucket["top"]:
                        assert entry["count"] >= 1
                        assert entry["p95_ms"] >= entry["p50_ms"] >= 0
                        assert 0.0 <= entry["cache_hit_ratio"] <= 1.0
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=5)
        assert status == 200
        assert len(tenants) >= 2
        total = sum(
            bucket["queries"] for bucket in payload["tenants"].values()
        )
        assert total == len(requests)


class TestReadiness:
    def test_healthz_and_readyz_on_live_server(self, served):
        _, base = served
        status, _, body = _get(base + "/healthz")
        assert status == 200 and body["ok"]
        status, _, payload = _get(base + "/readyz")
        assert status == 200
        assert payload["ready"] and payload["reasons"] == []
        assert payload["documents"] == ["hospital"]

    def test_readyz_flips_503_while_draining(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        catalog = EngineCatalog().add(
            "hospital", engine, hospital_document(seed=7, max_branch=4)
        )
        server = QueryServer(catalog, workers=1).start()
        httpd = make_http_server(server, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = "http://127.0.0.1:%d" % httpd.server_address[1]
        try:
            status, _, _ = _get(base + "/readyz")
            assert status == 200
            server.begin_drain()
            status, _, payload = _get(base + "/readyz")
            assert status == 503
            assert "draining" in payload["reasons"]
            # liveness stays green mid-drain
            status, _, _ = _get(base + "/healthz")
            assert status == 200
            # mid-drain queries are typed rejections, not hangs
            status, headers, body = _post(
                base + "/query",
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                },
            )
            assert status == 429
            assert body["error_code"] == "E_ADMISSION"
            assert "Retry-After" in headers
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)
            server.drain(deadline_seconds=5.0)


class TestDebugResilience:
    def test_payload_shape(self, served):
        _, base = served
        status, _, payload = _get(base + "/debug/resilience")
        assert status == 200
        assert set(payload) == {"shedding", "shed", "breakers", "drain"}
        assert set(payload["shed"]) == {"critical", "default", "sheddable"}
        assert "hospital" in payload["breakers"]
        assert payload["drain"]["draining"] is False


class _GatedServer:
    """An HTTP server whose single admission slot the test occupies."""

    def __init__(self, overload=None, queue_deadline_seconds=5.0,
                 max_queue_depth=4):
        from repro.serving.admission import (
            AdmissionController,
            TenantPolicy,
        )

        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        catalog = EngineCatalog().add(
            "hospital", engine, hospital_document(seed=7, max_branch=4)
        )
        self.admission = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=max_queue_depth,
                queue_deadline_seconds=queue_deadline_seconds,
            ),
            overload=overload,
        )
        self.server = QueryServer(
            catalog, admission=self.admission, workers=2
        ).start()
        self.httpd = make_http_server(self.server, port=0)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        self.base = "http://127.0.0.1:%d" % self.httpd.server_address[1]
        self._release = threading.Event()
        self._entered = threading.Event()
        self._holder = threading.Thread(target=self._hold)
        self._holder.start()
        assert self._entered.wait(timeout=5)

    def _hold(self):
        with self.admission.admit("nurse"):
            self._entered.set()
            self._release.wait(timeout=30)

    def close(self):
        self._release.set()
        self._holder.join()
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=5)
        self.server.stop()


class TestBackPressureStatusMapping:
    def post(self, gated, payload, headers=None):
        return _post(gated.base + "/query", payload, headers=headers)

    def test_queue_full_maps_to_429_with_retry_after(self):
        gated = _GatedServer(max_queue_depth=0)
        try:
            status, headers, body = self.post(
                gated,
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                },
            )
            assert status == 429
            assert not body["ok"]
            assert body["error_code"] == "E_ADMISSION"
            assert int(headers["Retry-After"]) >= 1
        finally:
            gated.close()

    def test_queue_deadline_maps_to_504(self):
        gated = _GatedServer(queue_deadline_seconds=0.05)
        try:
            status, headers, body = self.post(
                gated,
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                },
            )
            assert status == 504
            assert body["error_code"] == "E_DEADLINE"
            assert "Retry-After" not in headers
        finally:
            gated.close()

    def test_shed_maps_to_429_with_retry_after(self):
        from repro.serving.resilience import OverloadDetector

        detector = OverloadDetector(alpha=1.0)
        gated = _GatedServer(overload=detector)
        try:
            detector.observe(1.0)
            status, headers, body = self.post(
                gated,
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                    "criticality": "sheddable",
                },
            )
            assert status == 429
            assert body["error_code"] == "E_SHED"
            assert body["retry_after_seconds"] > 0
            assert int(headers["Retry-After"]) >= 1
            # the shed shows up in the resilience debug payload
            _, _, payload = _get(gated.base + "/debug/resilience")
            assert payload["shed"]["sheddable"] >= 1
        finally:
            gated.close()

    def test_criticality_header_sets_shedding_class(self):
        from repro.serving.resilience import OverloadDetector

        detector = OverloadDetector(alpha=1.0)
        gated = _GatedServer(overload=detector)
        try:
            detector.observe(1.0)
            status, _, body = self.post(
                gated,
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                },
                headers={"X-Repro-Criticality": "sheddable"},
            )
            assert status == 429
            assert body["error_code"] == "E_SHED"
        finally:
            gated.close()

    def test_body_criticality_wins_over_header(self):
        from repro.serving.resilience import OverloadDetector

        detector = OverloadDetector(alpha=1.0)
        gated = _GatedServer(queue_deadline_seconds=0.05, overload=detector)
        try:
            detector.observe(1.0)
            # body says critical -> never shed, rides to its deadline
            status, _, body = self.post(
                gated,
                {
                    "policy": "nurse",
                    "query": "//patient",
                    "document": "hospital",
                    "criticality": "critical",
                },
                headers={"X-Repro-Criticality": "sheddable"},
            )
            assert status == 504
            assert body["error_code"] == "E_DEADLINE"
        finally:
            gated.close()


class TestDisabledProfiling:
    def test_workload_endpoint_reports_disabled(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        catalog = EngineCatalog().add(
            "hospital", engine, hospital_document(seed=7, max_branch=4)
        )
        with QueryServer(catalog, workers=1, profiling=False) as server:
            httpd = make_http_server(server, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            base = "http://127.0.0.1:%d" % httpd.server_address[1]
            try:
                _, _, workload = _get(base + "/debug/workload")
                _, _, vars_payload = _get(base + "/debug/vars")
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=5)
        assert workload == {"enabled": False, "capacity": 0, "tenants": {}}
        assert vars_payload["profiling"] is False
        assert vars_payload["workload"] == {}


class TestDisabledTracing:
    def test_debug_endpoints_report_disabled(self):
        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        catalog = EngineCatalog().add(
            "hospital", engine, hospital_document(seed=7, max_branch=4)
        )
        with QueryServer(catalog, workers=1, tracing=False) as server:
            httpd = make_http_server(server, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            base = "http://127.0.0.1:%d" % httpd.server_address[1]
            try:
                _, _, traces = _get(base + "/debug/traces")
                _, _, by_id = _get(
                    base + "/debug/traces?trace_id=" + "0" * 32
                )
                _, _, slo = _get(base + "/debug/slo")
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=5)
        assert traces == {"enabled": False, "stats": {}, "traces": []}
        assert by_id == {"enabled": False, "traces": []}
        assert slo["enabled"] is False
