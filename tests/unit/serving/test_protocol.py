"""The frozen QueryRequest/QueryResponse wire protocol."""

import dataclasses
import json

import pytest

from repro.core.options import ExecutionOptions
from repro.errors import DeadlineExceeded, QueryRejectedError
from repro.robustness.governor import QueryLimits
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    QueryRequest,
    QueryResponse,
)


class TestQueryRequest:
    def test_frozen(self):
        request = QueryRequest(policy="nurse", query="//patient")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.policy = "doctor"

    def test_tenant_defaults_to_policy(self):
        assert QueryRequest(policy="nurse", query="//a").tenant_id == "nurse"
        assert (
            QueryRequest(policy="nurse", query="//a", tenant="ward-2").tenant_id
            == "ward-2"
        )

    def test_with_copies(self):
        request = QueryRequest(policy="nurse", query="//a")
        derived = request.with_(tenant="t1")
        assert derived.tenant == "t1" and request.tenant == ""

    def test_round_trip_minimal(self):
        request = QueryRequest(policy="nurse", query="//patient")
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_round_trip_full(self):
        request = QueryRequest(
            policy="nurse",
            query="//patient/name",
            document="hospital",
            tenant="ward-2",
            options=ExecutionOptions(
                strategy="columnar",
                use_index=True,
                limits=QueryLimits(deadline_seconds=0.5),
            ),
            request_id="r42",
        )
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_wire_shape_is_json_safe(self):
        request = QueryRequest(
            policy="nurse",
            query="//a",
            options=ExecutionOptions(limits=QueryLimits(max_results=3)),
        )
        payload = json.loads(json.dumps(request.to_dict()))
        assert payload["v"] == PROTOCOL_VERSION
        assert QueryRequest.from_dict(payload) == request

    def test_unknown_keys_ignored(self):
        request = QueryRequest.from_dict(
            {"policy": "p", "query": "//a", "hologram": True}
        )
        assert request.policy == "p"

    def test_criticality_round_trip(self):
        request = QueryRequest(
            policy="nurse", query="//a", criticality="sheddable"
        )
        assert request.to_dict()["criticality"] == "sheddable"
        assert QueryRequest.from_dict(request.to_dict()) == request

    def test_criticality_class_normalizes(self):
        assert QueryRequest(policy="p", query="//a").criticality_class == (
            "default"
        )
        assert (
            QueryRequest(
                policy="p", query="//a", criticality="critical"
            ).criticality_class
            == "critical"
        )
        # unknown wire values degrade to default, never an error
        assert (
            QueryRequest(
                policy="p", query="//a", criticality="ultra"
            ).criticality_class
            == "default"
        )

    def test_old_wire_payload_without_criticality_still_parses(self):
        request = QueryRequest.from_dict({"policy": "p", "query": "//a"})
        assert request.criticality == ""
        assert request.criticality_class == "default"


class TestQueryResponse:
    def test_from_error_carries_stable_code(self):
        request = QueryRequest(policy="nurse", query="//a", request_id="r1")
        response = QueryResponse.from_error(
            request, DeadlineExceeded("too slow")
        )
        assert not response.ok
        assert response.error_code == "E_DEADLINE"
        assert response.request_id == "r1"
        assert response.tenant == "nurse"
        assert response.results == ()

    def test_from_error_security_code(self):
        request = QueryRequest(policy="nurse", query="//secret")
        response = QueryResponse.from_error(
            request, QueryRejectedError("denied")
        )
        assert response.error_code == "E_LABEL_DENIED"

    def test_round_trip(self):
        response = QueryResponse(
            policy="nurse",
            query="//a",
            ok=True,
            results=("<name>x</name>", "text-value"),
            report={"visits": 3},
            request_id="r7",
            tenant="nurse",
        )
        assert QueryResponse.from_dict(response.to_dict()) == response

    def test_error_round_trip_via_json(self):
        request = QueryRequest(policy="p", query="//a", tenant="t")
        response = QueryResponse.from_error(request, DeadlineExceeded("x"))
        payload = json.loads(json.dumps(response.to_dict()))
        assert QueryResponse.from_dict(payload) == response

    def test_shed_error_carries_retry_after(self):
        from repro.errors import RequestShed

        request = QueryRequest(policy="p", query="//a", request_id="r9")
        response = QueryResponse.from_error(
            request,
            RequestShed(
                "shed",
                tenant="p",
                criticality="sheddable",
                utilization=0.7,
                retry_after_seconds=0.25,
            ),
        )
        assert response.error_code == "E_SHED"
        assert response.retry_after_seconds == pytest.approx(0.25)
        payload = json.loads(json.dumps(response.to_dict()))
        assert QueryResponse.from_dict(payload) == response

    def test_retry_after_defaults_to_none(self):
        request = QueryRequest(policy="p", query="//a")
        response = QueryResponse.from_error(request, DeadlineExceeded("x"))
        assert response.retry_after_seconds is None
        assert QueryResponse.from_dict({}).retry_after_seconds is None


class TestEngineIntegration:
    @pytest.fixture()
    def engine_and_document(self):
        from repro.workloads.hospital import (
            hospital_document,
            hospital_dtd,
            nurse_spec,
        )
        from repro.core.engine import SecureQueryEngine

        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        return engine, hospital_document(seed=7, max_branch=4)

    def test_execute_request_matches_query(self, engine_and_document):
        from repro.xmlmodel.serialize import serialize

        engine, document = engine_and_document
        request = QueryRequest(policy="nurse", query="//patient/name")
        response = engine.execute_request(request, document)
        direct = engine.query("nurse", "//patient/name", document)
        assert response.ok
        assert list(response.results) == [
            value if isinstance(value, str) else serialize(value)
            for value in direct
        ]
        assert response.report["result_count"] == len(direct)

    def test_execute_request_wraps_failures(self, engine_and_document):
        engine, document = engine_and_document
        request = QueryRequest(policy="ghost", query="//patient")
        response = engine.execute_request(request, document)
        assert not response.ok
        assert response.error_code == "E_SECURITY"

    def test_execute_batch_shares_scans(self, engine_and_document):
        engine, document = engine_and_document
        columnar = ExecutionOptions(strategy="columnar")
        requests = [
            QueryRequest(
                policy="nurse", query=text, options=columnar, request_id=str(i)
            )
            for i, text in enumerate(
                ["//patient/name", "//patient//bill", "//patient/name"]
            )
        ]
        responses = engine.execute_batch(requests, document)
        assert [r.request_id for r in responses] == ["0", "1", "2"]
        assert all(r.ok for r in responses)
        assert responses[0].results == responses[2].results
