"""The replay harness: closed-loop stats, retry budgets, and graceful
mid-replay drain (partial summaries instead of tracebacks)."""

import threading

from repro.robustness.faults import FaultPlan, FaultSpec
from repro.serving.replay import (
    mixed_workload,
    percentile,
    replay,
    standard_catalog,
    summarize,
)
from repro.serving.resilience import RetryBudget
from repro.serving.server import QueryServer


class TestStats:
    def test_percentile_interpolates(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_summarize_shape(self):
        summary = summarize([0.1, 0.2], 1.0)
        assert summary["requests"] == 2
        assert summary["qps"] == 2.0
        assert summary["p50_ms"] > 0


class TestReplay:
    def test_clean_replay_is_not_partial(self):
        catalog = standard_catalog(seed=0)
        requests = mixed_workload(repetitions=1, seed=0)
        with QueryServer(catalog, workers=2) as server:
            stats = replay(server, requests, clients=4)
        assert stats["requests"] == len(requests)
        assert not stats["errors"]
        assert stats["partial"] is False
        assert stats["transport_errors"] == 0
        assert stats["skipped"] == 0

    def test_retry_budget_summary_keys(self):
        catalog = standard_catalog(seed=0)
        requests = mixed_workload(repetitions=1, seed=0)
        budget = RetryBudget(ratio=0.1)
        with QueryServer(catalog, workers=2) as server:
            stats = replay(
                server, requests, clients=4, retry_budget=budget
            )
        assert stats["retries"] >= 0
        assert stats["retry_budget"]["ratio"] == 0.1
        # no failures -> nothing to retry
        assert stats["retries"] == 0


class TestMidReplayDrain:
    def test_drain_mid_replay_yields_partial_summary_not_traceback(self):
        """The regression scenario behind ``repro replay`` exiting
        nonzero instead of tracebacking: the server starts draining
        while clients are mid-stream.  Every in-flight request still
        resolves, the remainder is skipped, and the summary says so."""
        catalog = standard_catalog(seed=0)
        requests = mixed_workload(repetitions=4, seed=0)
        server = QueryServer(catalog, workers=2, max_batch=2).start()
        drained = {}

        def drain_soon():
            threading.Event().wait(0.1)
            drained["report"] = server.drain(deadline_seconds=10.0)

        drainer = threading.Thread(target=drain_soon)
        # slow each execution down so the drain lands mid-replay
        with FaultPlan(
            FaultSpec(
                "serving.execute",
                kind="latency",
                latency_seconds=0.01,
                every=1,
            )
        ):
            drainer.start()
            stats = replay(server, requests, clients=8)
        drainer.join()

        assert drained["report"]["unresolved"] == 0
        # partial, with the unprocessed remainder accounted as skipped
        assert stats["partial"] is True
        assert stats["requests"] + stats["skipped"] == len(requests)
        assert stats["skipped"] > 0
        # whatever failed mid-drain failed with a typed code
        assert set(stats["errors"]) <= {"E_ADMISSION", "E_DEADLINE"}

    def test_replay_against_stopped_server_skips_everything(self):
        catalog = standard_catalog(seed=0)
        requests = mixed_workload(repetitions=1, seed=0)
        server = QueryServer(catalog, workers=1).start()
        server.drain(deadline_seconds=5.0)
        stats = replay(server, requests, clients=4)
        assert stats["partial"] is True
        assert stats["skipped"] == len(requests)
        assert stats["requests"] == 0


class TestExitCodeMapping:
    def test_shed_has_a_dedicated_exit_code(self):
        from repro.cli import EXIT_CODES

        assert EXIT_CODES["E_SHED"] == 14
        assert EXIT_CODES["E_ADMISSION"] == 13
