"""The overload survival layer: detector, breakers, retry budgets."""

import threading

import pytest

from repro.errors import FaultInjected
from repro.obs.events import EventSink, QueryEvent
from repro.robustness.faults import FaultySink
from repro.serving.resilience import (
    CRITICAL,
    CRITICALITIES,
    DEFAULT,
    SHEDDABLE,
    BreakerBoard,
    BreakerSink,
    CircuitBreaker,
    OverloadDetector,
    RetryBudget,
    normalize_criticality,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCriticality:
    def test_classes_ordered_most_to_least_important(self):
        assert CRITICALITIES == (CRITICAL, DEFAULT, SHEDDABLE)

    def test_normalize_accepts_known_classes(self):
        for cls in CRITICALITIES:
            assert normalize_criticality(cls) == cls

    def test_normalize_never_errors(self):
        assert normalize_criticality("") == DEFAULT
        assert normalize_criticality(None) == DEFAULT
        assert normalize_criticality("CRITICAL") == DEFAULT
        assert normalize_criticality("hologram") == DEFAULT


class TestOverloadDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadDetector(alpha=0.0)
        with pytest.raises(ValueError):
            OverloadDetector(shed_sheddable_at=0.9, shed_default_at=0.5)

    def test_idle_sheds_nothing(self):
        detector = OverloadDetector()
        for cls in CRITICALITIES:
            assert not detector.should_shed(cls)
        assert detector.shed_classes() == ()

    def test_ewma_converges_and_sheds_lowest_class_first(self):
        detector = OverloadDetector(
            alpha=0.5, shed_sheddable_at=0.5, shed_default_at=0.85
        )
        # two saturated samples: ewma = 0.5, then 0.75
        detector.observe(1.0)
        detector.observe(1.0)
        assert detector.should_shed(SHEDDABLE)
        assert not detector.should_shed(DEFAULT)
        assert detector.shed_classes() == (SHEDDABLE,)
        # keep saturating: default goes too, critical never
        detector.observe(1.0)
        detector.observe(1.0)
        assert detector.should_shed(DEFAULT)
        assert not detector.should_shed(CRITICAL)
        assert detector.shed_classes() == (SHEDDABLE, DEFAULT)

    def test_critical_never_shed_even_fully_saturated(self):
        detector = OverloadDetector(alpha=1.0)
        detector.observe(1.0)
        assert detector.utilization() == 1.0
        assert not detector.should_shed(CRITICAL)

    def test_recovery_when_waits_drop(self):
        detector = OverloadDetector(alpha=0.5)
        for _ in range(4):
            detector.observe(1.0)
        assert detector.shed_classes()
        for _ in range(8):
            detector.observe(0.0)
        assert detector.shed_classes() == ()

    def test_observe_wait_normalizes_by_deadline(self):
        detector = OverloadDetector(alpha=1.0)
        detector.observe_wait(0.05, 0.1)
        assert detector.utilization() == pytest.approx(0.5)
        # no deadline -> the reference deadline scales the sample
        detector.observe_wait(0.5, None)
        assert detector.utilization() == pytest.approx(0.5)

    def test_samples_clamped_to_unit_interval(self):
        detector = OverloadDetector(alpha=1.0)
        detector.observe(17.0)
        assert detector.utilization() == 1.0
        detector.observe(-3.0)
        assert detector.utilization() == 0.0

    def test_deterministic_given_observation_sequence(self):
        a = OverloadDetector(alpha=0.2)
        b = OverloadDetector(alpha=0.2)
        samples = [0.1, 1.0, 0.4, 1.0, 0.0, 0.9]
        for value in samples:
            a.observe(value)
            b.observe(value)
        assert a.utilization() == b.utilization()
        assert a.shed_classes() == b.shed_classes()

    def test_retry_after_scales_with_utilization(self):
        detector = OverloadDetector(alpha=1.0, reference_seconds=2.0)
        assert detector.retry_after_seconds() == pytest.approx(0.1)
        detector.observe(1.0)
        assert detector.retry_after_seconds() == pytest.approx(2.0)

    def test_snapshot_shape(self):
        detector = OverloadDetector()
        detector.observe(1.0)
        snap = detector.snapshot()
        assert set(snap) == {
            "utilization",
            "samples",
            "shed_classes",
            "shed_sheddable_at",
            "shed_default_at",
            "alpha",
            "reference_seconds",
        }
        assert snap["samples"] == 1


class TestCircuitBreaker:
    def make(self, clock, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("reset_timeout_seconds", 1.0)
        kw.setdefault("jitter", 0.0)
        return CircuitBreaker("seam", clock=clock, **kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_closed_allows_and_single_failures_do_not_open(self):
        breaker = self.make(FakeClock())
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # success reset the streak
        assert breaker.allow()

    def test_consecutive_failures_open_then_short_circuit(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.short_circuits == 1

    def test_half_open_probe_recloses_on_success(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # siblings still short-circuit
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.reclosed == 1
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_with_longer_backoff(self):
        clock = FakeClock()
        breaker = self.make(clock, backoff_multiplier=2.0)
        for _ in range(3):
            breaker.record_failure()
        first = breaker.snapshot()["backoff_remaining_seconds"]
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        second = breaker.snapshot()["backoff_remaining_seconds"]
        assert second == pytest.approx(first * 2.0, rel=0.01)
        assert breaker.opened == 2

    def test_backoff_caps_at_max(self):
        clock = FakeClock()
        breaker = self.make(
            clock, backoff_multiplier=10.0, max_backoff_seconds=5.0
        )
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):  # keep failing probes
            clock.advance(1000.0)
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.snapshot()["backoff_remaining_seconds"] <= 5.0

    def test_jitter_is_seeded_and_bounded(self):
        def opened_backoff(seed):
            clock = FakeClock()
            breaker = CircuitBreaker(
                "s",
                failure_threshold=1,
                reset_timeout_seconds=1.0,
                jitter=0.1,
                seed=seed,
                clock=clock,
            )
            breaker.record_failure()
            return breaker.snapshot()["backoff_remaining_seconds"]

        assert opened_backoff(7) == opened_backoff(7)  # deterministic
        for seed in range(5):
            assert 0.9 <= opened_backoff(seed) <= 1.1

    def test_success_reset_keeps_backoff_ladder_fresh(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.01)
        breaker.allow()
        breaker.record_success()  # reclose resets the opens counter
        for _ in range(3):
            breaker.record_failure()
        # backoff restarted from the base timeout, not doubled
        assert breaker.snapshot()["backoff_remaining_seconds"] == (
            pytest.approx(1.0, rel=0.01)
        )

    def test_thread_safety_smoke(self):
        breaker = CircuitBreaker("s", failure_threshold=2)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                if breaker.allow():
                    breaker.record_failure()
                    breaker.record_success()

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for thread in threads:
            thread.start()
        stop.set()
        for thread in threads:
            thread.join()
        assert breaker.state in {"closed", "open", "half-open"}


class TestBreakerBoard:
    def test_breakers_keyed_and_cached_by_name(self):
        board = BreakerBoard()
        assert board.breaker("a") is board.breaker("a")
        assert board.breaker("a") is not board.breaker("b")

    def test_defaults_flow_to_new_breakers(self):
        board = BreakerBoard(failure_threshold=1)
        board.failure("seam")
        assert board.state("seam") == "open"
        assert not board.allow("seam")

    def test_open_names_sorted(self):
        clock = FakeClock()
        board = BreakerBoard(clock=clock, failure_threshold=1, jitter=0.0)
        board.allow("zeta")
        board.failure("zeta")
        board.allow("alpha")
        board.failure("alpha")
        board.allow("ok")
        board.success("ok")
        assert board.open_names() == ("alpha", "zeta")

    def test_snapshot_covers_all_breakers(self):
        board = BreakerBoard(failure_threshold=1)
        board.allow("a")
        board.failure("b")
        snap = board.snapshot()
        assert set(snap) == {"a", "b"}
        assert snap["b"]["state"] == "open"


class _Collector(EventSink):
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


class TestBreakerSink:
    def event(self):
        return QueryEvent(policy="p", query="//a", result_count=0)

    def test_healthy_sink_passes_through(self):
        inner = _Collector()
        sink = BreakerSink(inner)
        sink.emit(self.event())
        assert len(inner.events) == 1
        assert sink.skipped == 0

    def test_failing_sink_opens_and_skips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "sink", failure_threshold=2, jitter=0.0, clock=clock
        )
        sink = BreakerSink(FaultySink(), breaker=breaker)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                sink.emit(self.event())
        assert breaker.state == "open"
        # open: emits are skipped outright, no raise
        sink.emit(self.event())
        sink.emit(self.event())
        assert sink.skipped == 2

    def test_recovered_sink_recloses(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "sink",
            failure_threshold=1,
            reset_timeout_seconds=0.5,
            jitter=0.0,
            clock=clock,
        )
        flaky = FaultySink(after=0)
        sink = BreakerSink(flaky, breaker=breaker)
        with pytest.raises(FaultInjected):
            sink.emit(self.event())
        assert breaker.state == "open"
        clock.advance(0.6)
        flaky.after = 10**9  # sink healed
        flaky.emitted = 0
        sink.emit(self.event())  # the half-open probe succeeds
        assert breaker.state == "closed"
        assert breaker.reclosed == 1


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)

    def test_cold_tenant_gets_min_tokens(self):
        budget = RetryBudget(ratio=0.1, min_tokens=1.0)
        assert budget.try_spend("t")
        assert not budget.try_spend("t")

    def test_deposits_are_a_fraction_of_traffic(self):
        budget = RetryBudget(ratio=0.25, min_tokens=0.0)
        for _ in range(3):
            budget.record_request("t")
        assert not budget.try_spend("t")  # 0.75 tokens
        budget.record_request("t")
        assert budget.try_spend("t")  # 1.0 tokens
        assert budget.denied == 1 and budget.spent == 1

    def test_burst_caps_accumulation(self):
        budget = RetryBudget(ratio=1.0, burst=2.0, min_tokens=0.0)
        for _ in range(100):
            budget.record_request("t")
        assert budget.try_spend("t")
        assert budget.try_spend("t")
        assert not budget.try_spend("t")

    def test_tenants_are_isolated(self):
        budget = RetryBudget(ratio=0.0, min_tokens=1.0)
        assert budget.try_spend("a")
        assert budget.try_spend("b")
        assert not budget.try_spend("a")

    def test_snapshot(self):
        budget = RetryBudget(ratio=0.5)
        budget.record_request("t")
        budget.try_spend("t")
        snap = budget.snapshot()
        assert snap["ratio"] == 0.5
        assert snap["spent"] == 1
        assert "t" in snap["tokens"]
