"""The QueryServer: catalog resolution, futures contract, batching,
admission and audit parity."""

import threading

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.obs.events import RingBufferSink
from repro.serving.admission import AdmissionController, TenantPolicy
from repro.serving.protocol import QueryRequest, QueryResponse
from repro.serving.server import EngineCatalog, QueryServer
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture(scope="module")
def engine():
    dtd = hospital_dtd()
    built = SecureQueryEngine(dtd)
    built.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return built


@pytest.fixture(scope="module")
def document():
    return hospital_document(seed=7, max_branch=4)


@pytest.fixture()
def catalog(engine, document):
    return EngineCatalog().add("hospital", engine, document)


class TestEngineCatalog:
    def test_duplicate_ref_rejected(self, engine, document):
        from repro.errors import SecurityError

        catalog = EngineCatalog().add("d", engine, document)
        with pytest.raises(SecurityError):
            catalog.add("d", engine, document)

    def test_unknown_ref_raises(self, catalog):
        from repro.errors import SecurityError

        with pytest.raises(SecurityError):
            catalog.resolve("nope")
        assert "nope" not in catalog
        assert catalog.refs() == ["hospital"]


class TestQueryServer:
    def test_answers_match_direct_query(self, catalog, engine, document):
        from repro.xmlmodel.serialize import serialize

        direct = [
            value if isinstance(value, str) else serialize(value)
            for value in engine.query("nurse", "//patient/name", document)
        ]
        with QueryServer(catalog, workers=2) as server:
            response = server.query(
                QueryRequest(
                    policy="nurse", query="//patient/name", document="hospital"
                )
            )
        assert response.ok
        assert list(response.results) == direct

    def test_unknown_document_resolves_future(self, catalog):
        with QueryServer(catalog, workers=1) as server:
            response = server.query(
                QueryRequest(policy="nurse", query="//a", document="ghost")
            )
        assert not response.ok
        assert response.error_code == "E_SECURITY"

    def test_submit_never_raises_after_stop(self, catalog):
        server = QueryServer(catalog, workers=1).start()
        server.stop()
        response = server.submit(
            QueryRequest(policy="nurse", query="//a", document="hospital")
        ).result(timeout=5)
        assert not response.ok
        assert response.error_code == "E_ADMISSION"

    def test_batch_coalescing_preserves_answers(self, catalog, engine, document):
        columnar = ExecutionOptions(strategy="columnar")
        texts = ["//patient/name", "//patient//bill", "//patient/name"] * 4
        with QueryServer(catalog, workers=1, max_batch=8) as server:
            futures = [
                server.submit(
                    QueryRequest(
                        policy="nurse",
                        query=text,
                        document="hospital",
                        options=columnar,
                        request_id=str(index),
                    )
                )
                for index, text in enumerate(texts)
            ]
            responses = [future.result(timeout=30) for future in futures]
        assert all(response.ok for response in responses)
        # identical queries agree regardless of which batch served them
        by_text = {}
        for text, response in zip(texts, responses):
            by_text.setdefault(text, set()).add(response.results)
        assert all(len(variants) == 1 for variants in by_text.values())

    def test_admission_rejection_surfaces_and_audits(self, catalog, engine):
        sink = engine.add_sink(RingBufferSink())
        try:
            admission = AdmissionController(
                TenantPolicy(
                    max_concurrent=1,
                    max_queue_depth=0,
                    queue_deadline_seconds=5.0,
                )
            )
            # One slot, zero queue depth: racing many same-tenant
            # requests across two workers must reject some at the gate.
            with QueryServer(
                catalog, admission=admission, workers=2, max_batch=1
            ) as server:
                blocker = server.submit(
                    QueryRequest(
                        policy="nurse",
                        query="//patient//bill",
                        document="hospital",
                        tenant="hammer",
                    )
                )
                # saturate: with one slot and zero queue depth, racing
                # many requests must produce at least one E_ADMISSION
                futures = [
                    server.submit(
                        QueryRequest(
                            policy="nurse",
                            query="//patient//bill",
                            document="hospital",
                            tenant="hammer",
                        )
                    )
                    for _ in range(12)
                ]
                responses = [blocker.result(timeout=30)] + [
                    future.result(timeout=30) for future in futures
                ]
            codes = {r.error_code for r in responses if not r.ok}
            assert all(
                code in {"E_ADMISSION", "E_DEADLINE"} for code in codes
            )
            ok_count = sum(1 for r in responses if r.ok)
            assert ok_count >= 1
            if codes:  # every serving failure has an audit ErrorEvent
                audited = {
                    event.code for event in sink.events(kind="error")
                }
                assert codes <= audited
        finally:
            engine.remove_sink(sink)

    def test_tenant_isolation_under_flood(self, catalog):
        """A flooding tenant gets rejections; a polite tenant's
        requests all succeed."""
        admission = AdmissionController(
            TenantPolicy(max_concurrent=2, max_queue_depth=64)
        )
        admission.set_policy(
            "flood",
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=1,
                queue_deadline_seconds=10.0,
            ),
        )
        with QueryServer(
            catalog, admission=admission, workers=4, max_batch=4
        ) as server:
            flood = [
                server.submit(
                    QueryRequest(
                        policy="nurse",
                        query="//patient//bill",
                        document="hospital",
                        tenant="flood",
                    )
                )
                for _ in range(16)
            ]
            polite = [
                server.submit(
                    QueryRequest(
                        policy="nurse",
                        query="//patient/name",
                        document="hospital",
                        tenant="polite",
                    )
                )
                for _ in range(8)
            ]
            polite_responses = [f.result(timeout=30) for f in polite]
            flood_responses = [f.result(timeout=30) for f in flood]
        assert all(r.ok for r in polite_responses)
        # the flooder is bounded: not everything gets through at once
        flood_codes = {r.error_code for r in flood_responses if not r.ok}
        assert flood_codes <= {"E_ADMISSION", "E_DEADLINE"}

    def test_context_manager_and_request_ids(self, catalog):
        with QueryServer(catalog, workers=1) as server:
            first = server.next_request_id()
            second = server.next_request_id()
            assert first != second

    def test_response_is_protocol_type(self, catalog):
        with QueryServer(catalog, workers=1) as server:
            response = server.query(
                QueryRequest(
                    policy="nurse", query="//patient", document="hospital"
                )
            )
        assert isinstance(response, QueryResponse)
        assert QueryResponse.from_dict(response.to_dict()) == response


class TestRequestTracing:
    def _span_names(self, span, out=None):
        out = [] if out is None else out
        out.append(span["name"])
        for child in span.get("children", ()):
            self._span_names(child, out)
        return out

    def test_trace_id_minted_and_echoed(self, catalog):
        with QueryServer(catalog, workers=1) as server:
            response = server.query(
                QueryRequest(
                    policy="nurse", query="//patient", document="hospital"
                )
            )
        assert response.ok
        assert len(response.trace_id) == 32

    def test_client_trace_id_is_adopted(self, catalog):
        with QueryServer(catalog, workers=1) as server:
            response = server.query(
                QueryRequest(
                    policy="nurse",
                    query="//patient",
                    document="hospital",
                    trace_id="cafe" * 8,
                )
            )
        assert response.trace_id == "cafe" * 8

    def test_trace_findable_with_full_span_tree(self, catalog):
        with QueryServer(catalog, workers=1) as server:
            # a query no other test issues: a plan-cache hit would skip
            # the parse span and this test wants the full stage tree
            response = server.query(
                QueryRequest(
                    policy="nurse",
                    query="//patient/treatment/trId",
                    document="hospital",
                    request_id="rq-1",
                )
            )
            record = server.flight.get(response.trace_id)
        assert record is not None
        assert record.request_id == "rq-1"
        assert record.tenant == "nurse"
        names = self._span_names(record.spans)
        # queue wait, batch coalescing, and the engine stages all
        # appear in one request-rooted tree
        assert names[0] == "request"
        for expected in ("queue_wait", "batch", "query", "parse", "evaluate"):
            assert expected in names

    def test_denied_requests_always_tail_retained(self, document):
        from repro.obs.flight import FlightRecorder

        dtd = hospital_dtd()
        strict = SecureQueryEngine(dtd, strict=True)
        strict.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        catalog = EngineCatalog().add("hospital", strict, document)
        # capacity-1 reservoir: OK traffic would crowd out anything
        # sampled, but denials must survive in the tail regardless
        with QueryServer(
            catalog,
            workers=1,
            flight=FlightRecorder(capacity=1, tail_capacity=16, seed=0),
        ) as server:
            for _ in range(5):
                server.query(
                    QueryRequest(
                        policy="nurse", query="//patient", document="hospital"
                    )
                )
            denied = server.query(
                QueryRequest(
                    policy="nurse",
                    query="//clinicalTrial",
                    document="hospital",
                )
            )
            record = server.flight.get(denied.trace_id)
        assert not denied.ok
        assert denied.error_code == "E_LABEL_DENIED"
        assert record is not None
        assert record.status == "denied"

    def test_slo_tracks_tenants(self, catalog):
        with QueryServer(catalog, workers=1) as server:
            server.query(
                QueryRequest(
                    policy="nurse", query="//patient", document="hospital"
                )
            )
            payload = server.slo_payload()
        assert payload["enabled"]
        assert "nurse" in payload["tenants"]
        assert payload["tenants"]["nurse"]["requests"] == 1

    def test_tracing_disabled_is_inert(self, catalog):
        with QueryServer(catalog, workers=1, tracing=False) as server:
            response = server.query(
                QueryRequest(
                    policy="nurse", query="//patient", document="hospital"
                )
            )
            traces = server.trace_payload()
            slo = server.slo_payload()
        assert response.ok
        assert response.trace_id == ""
        # the engine still times its stages for the report
        assert response.report["total_seconds"] > 0
        assert response.report["timings"]
        assert server.flight is None and server.slo is None
        assert traces == {"enabled": False, "stats": {}, "traces": []}
        assert slo["enabled"] is False


class TestLifecycle:
    def request(self, **kw):
        kw.setdefault("policy", "nurse")
        kw.setdefault("query", "//patient/name")
        kw.setdefault("document", "hospital")
        return QueryRequest(**kw)

    def test_drain_flushes_queued_work_and_stops(self, catalog):
        server = QueryServer(catalog, workers=2).start()
        futures = [server.submit(self.request()) for _ in range(8)]
        report = server.drain(deadline_seconds=30.0)
        # every submitted future resolved, all answered
        responses = [future.result(timeout=0) for future in futures]
        assert all(response.ok for response in responses)
        assert report["unresolved"] == 0
        assert report["within_deadline"]
        assert server.stopped

    def test_begin_drain_stops_intake_with_retry_hint(self, catalog):
        server = QueryServer(catalog, workers=1).start()
        try:
            server.begin_drain()
            assert server.draining
            response = server.submit(self.request()).result(timeout=5)
            assert not response.ok
            assert response.error_code == "E_ADMISSION"
            assert "draining" in response.error_message
            assert response.retry_after_seconds is not None
        finally:
            server.drain(deadline_seconds=5.0)

    def test_drain_terminates_with_empty_queue(self, catalog):
        server = QueryServer(catalog, workers=1).start()
        report = server.drain(deadline_seconds=5.0)
        assert report["rejected"] == 0
        assert report["unresolved"] == 0
        assert report["within_deadline"]

    def test_drain_twice_is_idempotent(self, catalog):
        server = QueryServer(catalog, workers=1).start()
        server.drain(deadline_seconds=5.0)
        report = server.drain(deadline_seconds=5.0)
        assert report["unresolved"] == 0

    def test_cancelled_future_never_runs_and_never_leaks(self, catalog):
        """Regression: a future cancelled while queued must be skipped
        by the workers without occupying an admission slot, and the
        in-flight accounting must return to zero (a drift would stall
        drain forever)."""
        admission = AdmissionController(
            TenantPolicy(max_concurrent=1, max_queue_depth=64)
        )
        server = QueryServer(
            catalog, admission=admission, workers=1, max_batch=1
        )
        # queue up work BEFORE starting workers so cancellation wins
        futures = [server.submit(self.request()) for _ in range(6)]
        cancelled = [future for future in futures if future.cancel()]
        assert cancelled  # nothing was running yet
        server.start()
        for future in futures:
            if future not in cancelled:
                assert future.result(timeout=30).ok
        report = server.drain(deadline_seconds=10.0)
        assert report["unresolved"] == 0
        assert report["within_deadline"]
        assert admission.running() == 0
        assert admission.queue_depth() == 0

    def test_ready_payload_lifecycle(self, catalog):
        server = QueryServer(catalog, workers=1)
        ready, payload = server.ready_payload()
        assert not ready and "not started" in payload["reasons"]
        server.start()
        ready, payload = server.ready_payload()
        assert ready and payload["reasons"] == []
        server.begin_drain()
        ready, payload = server.ready_payload()
        assert not ready and "draining" in payload["reasons"]
        server.drain(deadline_seconds=5.0)
        ready, payload = server.ready_payload()
        assert not ready
        assert "stopped" in payload["reasons"]

    def test_ready_payload_gates_on_open_breakers(self, catalog):
        engine = catalog.engines()[0]
        board = engine.breakers
        assert board is not None
        server = QueryServer(catalog, workers=1).start()
        try:
            breaker = board.breaker("store.build")
            for _ in range(breaker.failure_threshold):
                breaker.record_failure()
            ready, payload = server.ready_payload()
            assert not ready
            assert "store.build" in payload["open_breakers"]
        finally:
            board.breaker("store.build").record_success()
            server.stop()

    def test_resilience_payload_shape(self, catalog):
        from repro.serving.resilience import OverloadDetector

        admission = AdmissionController(overload=OverloadDetector())
        server = QueryServer(catalog, admission=admission, workers=1)
        server.start()
        try:
            payload = server.resilience_payload()
            assert payload["shedding"]["enabled"]
            assert set(payload["shed"]) == {
                "critical",
                "default",
                "sheddable",
            }
            assert "hospital" in payload["breakers"]
            assert payload["drain"]["draining"] is False
            assert payload["drain"]["report"] is None
        finally:
            server.stop()
        payload = server.resilience_payload()
        assert payload["drain"]["stopped"] is True

    def test_resilience_payload_without_detector(self, catalog):
        server = QueryServer(catalog, workers=1)
        payload = server.resilience_payload()
        assert payload["shedding"] == {"enabled": False}
