"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.workloads.hospital import HOSPITAL_DTD_TEXT

NURSE_SPEC_TEXT = """
# Example 3.1
hospital dept [*/patient/wardNo = $wardNo]
dept clinicalTrial N
clinicalTrial patientInfo Y
treatment trial N
treatment regular N
trial bill Y
regular bill Y
regular medication Y
"""

VALID_DOC = """
<hospital><dept>
  <clinicalTrial><patientInfo/></clinicalTrial>
  <patientInfo>
    <patient><name>ann</name><wardNo>2</wardNo>
      <treatment><regular><bill>7</bill><medication>x</medication></regular></treatment>
    </patient>
  </patientInfo>
  <staffInfo/>
</dept></hospital>
"""


@pytest.fixture()
def workspace(tmp_path):
    dtd = tmp_path / "hospital.dtd"
    dtd.write_text(HOSPITAL_DTD_TEXT)
    spec = tmp_path / "nurse.spec"
    spec.write_text(NURSE_SPEC_TEXT)
    document = tmp_path / "doc.xml"
    document.write_text(VALID_DOC)
    return tmp_path


class TestValidate:
    def test_valid(self, workspace, capsys):
        code = main(
            ["validate", str(workspace / "doc.xml"), str(workspace / "hospital.dtd")]
        )
        assert code == 0
        assert "conforms" in capsys.readouterr().out

    def test_invalid(self, workspace, capsys):
        bad = workspace / "bad.xml"
        bad.write_text("<hospital><oops/></hospital>")
        code = main(
            ["validate", str(bad), str(workspace / "hospital.dtd")]
        )
        assert code == 1
        assert "invalid" in capsys.readouterr().out


class TestGenerate:
    def test_generate_to_stdout(self, workspace, capsys):
        code = main(["generate", str(workspace / "hospital.dtd"), "--seed", "3"])
        assert code == 0
        assert capsys.readouterr().out.startswith("<hospital")

    def test_generate_to_file_conforms(self, workspace, capsys):
        out = workspace / "gen.xml"
        code = main(
            [
                "generate",
                str(workspace / "hospital.dtd"),
                "--seed",
                "5",
                "--max-branch",
                "4",
                "-o",
                str(out),
                "--pretty",
            ]
        )
        assert code == 0
        validate_code = main(
            ["validate", str(out), str(workspace / "hospital.dtd")]
        )
        assert validate_code == 0


class TestPolicyCommands:
    def args(self, workspace, *rest):
        return [
            str(workspace / "hospital.dtd"),
            str(workspace / "nurse.spec"),
            *rest,
            "--bind",
            "wardNo=2",
        ]

    def test_view_dtd(self, workspace, capsys):
        code = main(["view-dtd", *self.args(workspace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "dummy1" in out and "clinicalTrial" not in out

    def test_rewrite(self, workspace, capsys):
        code = main(["rewrite", *self.args(workspace, "//patient//bill")])
        assert code == 0
        out = capsys.readouterr().out
        assert "rewritten:" in out and "optimized:" in out
        assert "clinicalTrial/patientInfo" in out

    def test_rewrite_no_optimize(self, workspace, capsys):
        code = main(
            [
                "rewrite",
                *self.args(workspace, "//patient//bill"),
                "--no-optimize",
            ]
        )
        assert code == 0
        assert "optimized:" not in capsys.readouterr().out

    def test_query(self, workspace, capsys):
        code = main(
            [
                "query",
                str(workspace / "hospital.dtd"),
                str(workspace / "nurse.spec"),
                str(workspace / "doc.xml"),
                "//patient/name",
                "--bind",
                "wardNo=2",
            ]
        )
        assert code == 0
        assert "<name>ann</name>" in capsys.readouterr().out

    def test_query_explain(self, workspace, capsys):
        code = main(
            [
                "query",
                str(workspace / "hospital.dtd"),
                str(workspace / "nurse.spec"),
                str(workspace / "doc.xml"),
                "//dummy2/medication",
                "--bind",
                "wardNo=2",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "results  : 1" in out
        assert "<medication>x</medication>" in out

    def query_args(self, workspace, *rest):
        return [
            "query",
            str(workspace / "hospital.dtd"),
            str(workspace / "nurse.spec"),
            str(workspace / "doc.xml"),
            "//patient/name",
            "--bind",
            "wardNo=2",
            *rest,
        ]

    def test_query_trace_prints_profile(self, workspace, capsys):
        code = main(self.query_args(workspace, "--trace"))
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "calls=" in out
        assert "<name>ann</name>" in out

    def test_query_explain_and_trace_compose(self, workspace, capsys):
        code = main(self.query_args(workspace, "--explain", "--trace"))
        assert code == 0
        out = capsys.readouterr().out
        assert "results  : 1" in out  # --explain summary
        assert "EXPLAIN ANALYZE" in out  # --trace profile

    def test_query_metrics_prints_snapshot(self, workspace, capsys):
        code = main(self.query_args(workspace, "--metrics"))
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "query.count = 1" in out

    def test_query_metrics_flag_leaves_metrics_disabled(self, workspace):
        from repro.obs.metrics import metrics_enabled

        assert not metrics_enabled()
        main(self.query_args(workspace, "--metrics"))
        assert not metrics_enabled()

    def test_query_json_payload(self, workspace, capsys):
        import json

        code = main(
            self.query_args(workspace, "--trace", "--metrics", "--json")
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # the whole output is one JSON object
        assert payload["results"] == ["<name>ann</name>"]
        assert payload["report"]["result_count"] == 1
        assert payload["report"]["profile"]["plans"]
        assert payload["metrics"]["counters"]["query.count"] == 1

    def test_query_json_without_trace_has_no_profile(self, workspace, capsys):
        import json

        code = main(self.query_args(workspace, "--json"))
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "profile" not in payload["report"]
        assert "metrics" not in payload


class TestErrors:
    def test_missing_file(self, workspace, capsys):
        code = main(
            ["validate", str(workspace / "nope.xml"), str(workspace / "hospital.dtd")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_binding(self, workspace, capsys):
        code = main(["view-dtd", *self.bad_bind_args(workspace)])
        assert code == 2

    def bad_bind_args(self, workspace):
        return [
            str(workspace / "hospital.dtd"),
            str(workspace / "nurse.spec"),
            "--bind",
            "oops",
        ]

    def test_bad_spec_line(self, workspace, capsys):
        from repro.cli import EXIT_CODES

        broken = workspace / "broken.spec"
        broken.write_text("just two\n")
        code = main(
            [
                "view-dtd",
                str(workspace / "hospital.dtd"),
                str(broken),
            ]
        )
        assert code == EXIT_CODES["E_SPEC"]
        err = capsys.readouterr().err
        assert "spec line 1" in err and "[E_SPEC]" in err

    def test_bad_xpath_exit_code(self, workspace, capsys):
        from repro.cli import EXIT_CODES

        code = main(
            [
                "rewrite",
                str(workspace / "hospital.dtd"),
                str(workspace / "nurse.spec"),
                "//patient[",
                "--bind",
                "wardNo=2",
            ]
        )
        assert code == EXIT_CODES["E_PARSE_XPATH"]
        assert "[E_PARSE_XPATH]" in capsys.readouterr().err

    def test_strict_denial_exit_code(self, workspace, capsys):
        from repro.cli import EXIT_CODES

        code = main(
            [
                "query",
                str(workspace / "hospital.dtd"),
                str(workspace / "nurse.spec"),
                str(workspace / "doc.xml"),
                "//clinicalTrial",
                "--bind",
                "wardNo=2",
                "--strict",
            ]
        )
        assert code == EXIT_CODES["E_LABEL_DENIED"]
        assert "[E_LABEL_DENIED]" in capsys.readouterr().err

    def test_bad_dtd_exit_code(self, workspace, capsys):
        from repro.cli import EXIT_CODES

        broken = workspace / "broken.dtd"
        broken.write_text("<!ELEMENT oops")
        code = main(
            ["generate", str(broken)]
        )
        assert code == EXIT_CODES["E_PARSE_DTD"]


class TestAuditCommands:
    def write_log(self, workspace, capsys):
        """Run two audited queries (one a denial) and return the log."""
        log = workspace / "audit.jsonl"
        base = [
            str(workspace / "hospital.dtd"),
            str(workspace / "nurse.spec"),
            str(workspace / "doc.xml"),
        ]
        assert (
            main(
                [
                    "query",
                    *base,
                    "//patient/name",
                    "--bind",
                    "wardNo=2",
                    "--audit-log",
                    str(log),
                    "--canary",
                    "1.0",
                    "--canary-seed",
                    "0",
                ]
            )
            == 0
        )
        main(
            [
                "query",
                *base,
                "//clinicalTrial",
                "--bind",
                "wardNo=2",
                "--strict",
                "--audit-log",
                str(log),
            ]
        )
        capsys.readouterr()  # discard query output
        return log

    def test_query_writes_jsonl_audit_log(self, workspace, capsys):
        from repro.obs.audit import AuditLog

        log = self.write_log(workspace, capsys)
        # policy registration happens before the sink attaches, so the
        # trail holds exactly the serving-path events of the two runs
        audit = AuditLog.from_jsonl(log)
        kinds = sorted(event.kind for event in audit)
        assert kinds == ["canary", "denial", "query"]

    def test_audit_tail(self, workspace, capsys):
        log = self.write_log(workspace, capsys)
        assert main(["audit", "tail", str(log)]) == 0
        out = capsys.readouterr().out
        assert "query" in out and "canary" in out and "denial" in out
        assert "//patient/name" in out

    def test_audit_tail_filters_and_json(self, workspace, capsys):
        import json

        log = self.write_log(workspace, capsys)
        assert main(["audit", "tail", str(log), "--kind", "query", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "query"

    def test_audit_tail_trace_id_filter(self, workspace, capsys):
        from repro.obs.events import ErrorEvent, QueryEvent

        log = workspace / "traced.jsonl"
        events = [
            QueryEvent(
                policy="nurse",
                query="//patient",
                rewritten="//patient",
                strategy="virtual",
                cache_hit=False,
                result_count=1,
                visits=3,
                latency_seconds=0.001,
                slow=False,
                trace_id="aa" * 16,
            ),
            ErrorEvent("nurse", "//a[", "E_PARSE_XPATH", "bad",
                       trace_id="bb" * 16),
        ]
        log.write_text(
            "".join(event.to_json() + "\n" for event in events)
        )
        assert (
            main(["audit", "tail", str(log), "--trace-id", "bb" * 16]) == 0
        )
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 1
        assert "//a[" in lines[0] and "error" in lines[0]

    def test_audit_stats(self, workspace, capsys):
        log = self.write_log(workspace, capsys)
        assert main(["audit", "stats", str(log)]) == 0
        out = capsys.readouterr().out
        assert "policy policy:" in out
        assert "queries=1" in out and "denials=1" in out
        assert "checks=1 violations=0" in out
        assert "p95=" in out

    def test_audit_stats_json(self, workspace, capsys):
        import json

        log = self.write_log(workspace, capsys)
        assert main(["audit", "stats", str(log), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        bucket = stats["policy"]
        assert bucket["queries"] == 1
        assert bucket["denials"] == 1
        assert bucket["canary_violations"] == 0
        assert bucket["latency"]["count"] == 1

    def test_query_slow_ms_flags_slow_queries(self, workspace, capsys):
        from repro.obs.audit import AuditLog

        log = workspace / "slow.jsonl"
        code = main(
            [
                "query",
                str(workspace / "hospital.dtd"),
                str(workspace / "nurse.spec"),
                str(workspace / "doc.xml"),
                "//patient/name",
                "--bind",
                "wardNo=2",
                "--audit-log",
                str(log),
                "--slow-ms",
                "0",
            ]
        )
        assert code == 0
        (event,) = AuditLog.from_jsonl(log).events(kind="query")
        assert event.slow and event.profile


class TestMetricsCommand:
    def snapshot_path(self, workspace, capsys):
        import json

        path = workspace / "metrics.json"
        code = main(
            [
                "query",
                str(workspace / "hospital.dtd"),
                str(workspace / "nurse.spec"),
                str(workspace / "doc.xml"),
                "//patient/name",
                "--bind",
                "wardNo=2",
                "--metrics",
                "--json",
            ]
        )
        assert code == 0
        path.write_text(capsys.readouterr().out)
        return path

    def test_metrics_text(self, workspace, capsys):
        path = self.snapshot_path(workspace, capsys)
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out and "query.count = 1" in out

    def test_metrics_prometheus(self, workspace, capsys):
        path = self.snapshot_path(workspace, capsys)
        assert main(["metrics", str(path), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_query_count_total counter" in out
        assert "repro_query_count_total 1" in out

    def test_metrics_rejects_non_snapshot(self, workspace, capsys):
        bad = workspace / "notmetrics.json"
        bad.write_text('{"unrelated": 1}')
        assert main(["metrics", str(bad)]) == 2
        assert "snapshot" in capsys.readouterr().err


class TestSpecTextParser:
    def test_comments_and_blanks(self):
        from repro.core.spec import parse_spec_text
        from repro.workloads.hospital import hospital_dtd

        spec = parse_spec_text(
            hospital_dtd(),
            "\n# comment\n\ndept clinicalTrial N\n",
        )
        assert len(spec.annotations()) == 1

    def test_qualifier_with_spaces(self):
        from repro.core.spec import CondAnnotation, parse_spec_text
        from repro.workloads.hospital import hospital_dtd

        spec = parse_spec_text(
            hospital_dtd(),
            "hospital dept [*/patient/wardNo = $wardNo]\n",
        )
        annotation = spec.ann("hospital", "dept")
        assert isinstance(annotation, CondAnnotation)


class TestTable1Command:
    def test_table1_tiny_scale(self, capsys):
        code = main(["table1", "--scale", "0.05", "--repeat", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Q1" in out and "Q4" in out


class TestGovernorFlags:
    """`--timeout-ms` / `--max-results` / `--max-visits` map limit
    violations to their dedicated exit codes (E_DEADLINE=11,
    E_BUDGET=12)."""

    def query_args(self, workspace, *rest):
        return [
            "query",
            str(workspace / "hospital.dtd"),
            str(workspace / "nurse.spec"),
            str(workspace / "doc.xml"),
            "//patient/name",
            "--bind",
            "wardNo=2",
            *rest,
        ]

    def test_timeout_exit_code(self, workspace, capsys):
        code = main(self.query_args(workspace, "--timeout-ms", "0.000001"))
        assert code == 11
        err = capsys.readouterr().err
        assert "E_DEADLINE" in err
        assert "deadline" in err

    def test_max_visits_exit_code(self, workspace, capsys):
        code = main(self.query_args(workspace, "--max-visits", "1"))
        assert code == 12
        err = capsys.readouterr().err
        assert "E_BUDGET" in err
        assert "max_visits=1" in err

    def test_max_results_exit_code(self, workspace, capsys):
        # doc.xml holds exactly one ward-2 patient name: within budget
        code = main(self.query_args(workspace, "--max-results", "1"))
        assert code == 0
        capsys.readouterr()
        wide = [
            "query",
            str(workspace / "hospital.dtd"),
            str(workspace / "nurse.spec"),
            str(workspace / "doc.xml"),
            "//patient/*",
            "--bind",
            "wardNo=2",
            "--max-results",
            "1",
        ]
        code = main(wide)
        assert code == 12
        assert "max_results=1" in capsys.readouterr().err

    def test_generous_limits_answer_normally(self, workspace, capsys):
        code = main(
            self.query_args(
                workspace,
                "--timeout-ms",
                "30000",
                "--max-visits",
                "1000000",
                "--max-results",
                "100000",
            )
        )
        assert code == 0
        assert "<name>ann</name>" in capsys.readouterr().out

    def test_exit_code_registry(self):
        from repro.cli import EXIT_CODES

        assert EXIT_CODES["E_DEADLINE"] == 11
        assert EXIT_CODES["E_BUDGET"] == 12


class TestWorkloadCommand:
    """`repro workload top|report` against a live HTTP front end."""

    @pytest.fixture()
    def live_server(self):
        import threading

        from repro.core.engine import SecureQueryEngine
        from repro.serving.httpd import make_http_server
        from repro.serving.protocol import QueryRequest
        from repro.serving.server import EngineCatalog, QueryServer
        from repro.workloads.hospital import (
            hospital_document,
            hospital_dtd,
            nurse_spec,
        )

        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        catalog = EngineCatalog().add(
            "hospital", engine, hospital_document(seed=7, max_branch=4)
        )
        with QueryServer(catalog, workers=1) as server:
            for query in ("//patient", "//patient", "//patient/name"):
                response = server.query(
                    QueryRequest(
                        policy="nurse", query=query, document="hospital"
                    )
                )
                assert response.ok, response.error_message
            httpd = make_http_server(server, port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            try:
                yield "http://127.0.0.1:%d" % httpd.server_address[1]
            finally:
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=5)

    def test_workload_top(self, live_server, capsys):
        assert main(["workload", "top", "--url", live_server]) == 0
        out = capsys.readouterr().out
        assert "tenant nurse:" in out
        assert "queries=3" in out
        assert "count=2" in out  # //patient served twice
        assert "//patient" in out  # shape column

    def test_workload_top_n_limits_rows(self, live_server, capsys):
        assert (
            main(["workload", "top", "--url", live_server, "-n", "1"]) == 0
        )
        out = capsys.readouterr().out
        # header plus exactly one fingerprint row
        assert len(out.strip().splitlines()) == 2

    def test_workload_report_json(self, live_server, capsys):
        import json

        assert (
            main(
                [
                    "workload",
                    "report",
                    "--url",
                    live_server,
                    "--tenant",
                    "nurse",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["enabled"] is True
        assert list(payload["tenants"]) == ["nurse"]
        assert payload["tenants"]["nurse"]["queries"] == 3

    def test_workload_top_json(self, live_server, capsys):
        import json

        assert (
            main(["workload", "top", "--url", live_server, "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["tenants"]["nurse"]["fingerprints"] == 2
