"""Tests for the exception hierarchy: everything derives from
ReproError, and location-carrying errors format their positions."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.XMLError,
    errors.XMLParseError,
    errors.DTDError,
    errors.DTDParseError,
    errors.DTDValidationError,
    errors.ContentModelError,
    errors.XPathError,
    errors.XPathSyntaxError,
    errors.XPathEvaluationError,
    errors.SecurityError,
    errors.SpecificationError,
    errors.ViewDerivationError,
    errors.MaterializationAborted,
    errors.RewriteError,
    errors.QueryRejectedError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_everything_is_a_repro_error(error_class):
    assert issubclass(error_class, errors.ReproError)


def test_xml_parse_error_location():
    error = errors.XMLParseError("bad tag", line=3, column=7)
    assert "line 3" in str(error) and "column 7" in str(error)
    assert error.line == 3 and error.column == 7


def test_xml_parse_error_without_location():
    error = errors.XMLParseError("bad tag")
    assert str(error) == "bad tag"
    assert error.line is None


def test_xpath_syntax_error_offset():
    error = errors.XPathSyntaxError("unexpected", position=12)
    assert "offset 12" in str(error)
    assert error.position == 12


def test_subsystem_grouping():
    assert issubclass(errors.XMLParseError, errors.XMLError)
    assert issubclass(errors.DTDParseError, errors.DTDError)
    assert issubclass(errors.XPathSyntaxError, errors.XPathError)
    assert issubclass(errors.MaterializationAborted, errors.SecurityError)
    assert issubclass(errors.QueryRejectedError, errors.SecurityError)


def test_catching_the_base_class():
    from repro.xpath.parser import parse_xpath

    with pytest.raises(errors.ReproError):
        parse_xpath("a[")


EXPECTED_CODES = {
    errors.ReproError: "E_REPRO",
    errors.XMLError: "E_XML",
    errors.XMLParseError: "E_PARSE_XML",
    errors.DTDError: "E_DTD",
    errors.DTDParseError: "E_PARSE_DTD",
    errors.DTDValidationError: "E_DTD_INVALID",
    errors.ContentModelError: "E_CONTENT_MODEL",
    errors.XPathError: "E_XPATH",
    errors.XPathSyntaxError: "E_PARSE_XPATH",
    errors.XPathEvaluationError: "E_XPATH_EVAL",
    errors.SecurityError: "E_SECURITY",
    errors.SpecificationError: "E_SPEC",
    errors.ViewDerivationError: "E_DERIVE",
    errors.MaterializationAborted: "E_MATERIALIZE",
    errors.RewriteError: "E_REWRITE",
    errors.QueryRejectedError: "E_LABEL_DENIED",
}


class TestStableCodes:
    """The ``code`` attribute is a public contract: audit events, the
    CLI exit-code map, and downstream alerting all key on it."""

    @pytest.mark.parametrize(
        "error_class,code",
        sorted(EXPECTED_CODES.items(), key=lambda item: item[1]),
        ids=lambda value: value if isinstance(value, str) else value.__name__,
    )
    def test_every_error_has_its_code(self, error_class, code):
        assert error_class.code == code

    def test_codes_are_unique(self):
        codes = [error_class.code for error_class in EXPECTED_CODES]
        assert len(codes) == len(set(codes))

    def test_instances_carry_the_class_code(self):
        assert errors.XPathSyntaxError("oops").code == "E_PARSE_XPATH"

    def test_error_code_helper(self):
        assert errors.error_code(errors.RewriteError("x")) == "E_REWRITE"
        assert errors.error_code(ValueError("x")) == "E_UNKNOWN"

    def test_raised_parser_errors_carry_codes(self):
        from repro.xpath.parser import parse_xpath

        with pytest.raises(errors.ReproError) as info:
            parse_xpath("a[")
        assert info.value.code == "E_PARSE_XPATH"

    def test_union_on_query_path_raises_coded_error(self):
        from repro.xpath.ast import Union

        with pytest.raises(errors.XPathError) as info:
            Union([])
        assert info.value.code == "E_XPATH"
