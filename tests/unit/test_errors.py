"""Tests for the exception hierarchy: everything derives from
ReproError, and location-carrying errors format their positions."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.XMLError,
    errors.XMLParseError,
    errors.DTDError,
    errors.DTDParseError,
    errors.DTDValidationError,
    errors.ContentModelError,
    errors.XPathError,
    errors.XPathSyntaxError,
    errors.XPathEvaluationError,
    errors.SecurityError,
    errors.SpecificationError,
    errors.ViewDerivationError,
    errors.MaterializationAborted,
    errors.RewriteError,
    errors.QueryRejectedError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_everything_is_a_repro_error(error_class):
    assert issubclass(error_class, errors.ReproError)


def test_xml_parse_error_location():
    error = errors.XMLParseError("bad tag", line=3, column=7)
    assert "line 3" in str(error) and "column 7" in str(error)
    assert error.line == 3 and error.column == 7


def test_xml_parse_error_without_location():
    error = errors.XMLParseError("bad tag")
    assert str(error) == "bad tag"
    assert error.line is None


def test_xpath_syntax_error_offset():
    error = errors.XPathSyntaxError("unexpected", position=12)
    assert "offset 12" in str(error)
    assert error.position == 12


def test_subsystem_grouping():
    assert issubclass(errors.XMLParseError, errors.XMLError)
    assert issubclass(errors.DTDParseError, errors.DTDError)
    assert issubclass(errors.XPathSyntaxError, errors.XPathError)
    assert issubclass(errors.MaterializationAborted, errors.SecurityError)
    assert issubclass(errors.QueryRejectedError, errors.SecurityError)


def test_catching_the_base_class():
    from repro.xpath.parser import parse_xpath

    with pytest.raises(errors.ReproError):
        parse_xpath("a[")
