"""The lazy (PEP 562) facade: ``import repro`` must stay cheap.

The 1.x facade eagerly imported every subpackage; 2.0 resolves each
exported name on first attribute access.  These tests pin both halves
of the contract: laziness (a bare import pulls in no subpackage) and
completeness (every ``__all__`` name still resolves to the same object
as its defining module).
"""

import json
import subprocess
import sys

import pytest

#: Subpackages a bare ``import repro`` must NOT load.
HEAVY_MODULES = (
    "repro.core",
    "repro.obs",
    "repro.robustness",
    "repro.serving",
    "repro.workloads",
    "repro.xpath",
    "repro.dtd",
)

_PROBE = """
import json
import sys

import repro

version = repro.__version__
loaded_before = sorted(
    name for name in sys.modules if name.startswith("repro.")
)
repro.SecureQueryEngine  # force one lazy resolution
loaded_after = sorted(
    name for name in sys.modules if name.startswith("repro.")
)
print(json.dumps({
    "version": version,
    "before": loaded_before,
    "after": loaded_after,
}))
"""


@pytest.fixture(scope="module")
def probe():
    """Run the import probe in a pristine interpreter (this test
    process has long since imported everything)."""
    result = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


class TestLazyImport:
    def test_bare_import_loads_no_subpackage(self, probe):
        loaded = set(probe["before"])
        for module in HEAVY_MODULES:
            assert module not in loaded, (
                "import repro eagerly loaded %s" % module
            )

    def test_attribute_access_loads_on_demand(self, probe):
        assert "repro.core" not in set(probe["before"])
        assert "repro.core" in set(probe["after"])

    def test_version(self, probe):
        assert probe["version"] == "2.3.0"


class TestFacadeCompleteness:
    def test_every_export_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_exports_match_defining_modules(self):
        import repro
        from repro.core.engine import SecureQueryEngine
        from repro.errors import AdmissionRejected
        from repro.serving.protocol import QueryRequest, QueryResponse
        from repro.serving.server import QueryServer

        assert repro.SecureQueryEngine is SecureQueryEngine
        assert repro.QueryRequest is QueryRequest
        assert repro.QueryResponse is QueryResponse
        assert repro.QueryServer is QueryServer
        assert repro.AdmissionRejected is AdmissionRejected

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_an_export

    def test_dir_covers_exports(self):
        import repro

        listed = set(dir(repro))
        assert set(repro.__all__) <= listed

    def test_resolution_is_cached(self):
        import repro

        first = repro.ExecutionOptions
        assert repro.__dict__["ExecutionOptions"] is first
