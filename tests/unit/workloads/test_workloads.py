"""Unit tests for the workload definitions."""

import pytest

from repro.dtd.validate import conforms
from repro.workloads.adex import adex_document, adex_dtd, adex_engine, adex_spec
from repro.workloads.documents import DATASET_SCALES, dataset, dataset_sizes
from repro.workloads.hospital import (
    doctor_spec,
    hospital_document,
    hospital_dtd,
    nurse_engine,
    nurse_spec,
)
from repro.workloads.queries import (
    ADEX_EXPECTED_OPTIMIZED,
    ADEX_EXPECTED_REWRITES,
    ADEX_QUERIES,
    ADEX_QUERY_TEXTS,
    HOSPITAL_QUERIES,
    adex_query,
)


class TestHospitalWorkload:
    def test_dtd_matches_figure1(self):
        dtd = hospital_dtd()
        assert dtd.root == "hospital"
        assert dtd.production_kind("treatment") == "choice"
        assert dtd.production_kind("staff") == "choice"
        assert dtd.children_of("dept") == (
            "clinicalTrial",
            "patientInfo",
            "staffInfo",
        )

    def test_nurse_spec_edges(self):
        spec = nurse_spec()
        assert spec.parameters() == {"wardNo"}
        assert len(spec.annotations()) == 8

    def test_doctor_spec(self):
        spec = doctor_spec()
        assert spec.parameters() == set()

    def test_documents_conform(self):
        dtd = hospital_dtd()
        for seed in (0, 5, 9):
            assert conforms(hospital_document(seed=seed), dtd)

    def test_ward_pool_constrains_values(self):
        document = hospital_document(seed=1, max_branch=5, wards=("7",))
        wards = {node.string_value() for node in document.find_all("wardNo")}
        assert wards <= {"7"}

    def test_nurse_engine_ready(self):
        engine = nurse_engine(ward="3")
        assert engine.policies() == ["nurse"]
        assert "clinicalTrial" not in engine.view_dtd_text("nurse")


class TestAdexWorkload:
    def test_structural_properties_the_experiments_need(self):
        dtd = adex_dtd()
        # Q3: co-existence at buyer-info
        assert dtd.production_kind("buyer-info") == "seq"
        assert dtd.children_of("buyer-info") == ("company-id", "contact-info")
        # Q4: exclusive at real-estate
        assert dtd.production_kind("real-estate") == "choice"
        assert set(dtd.children_of("real-estate")) == {"house", "apartment"}
        # Q2: warranty under house only
        assert dtd.is_child("house", "r-e.warranty")
        assert not dtd.is_child("apartment", "r-e.warranty")
        # hidden categories exist
        assert {"employment", "automotive"} <= set(
            dtd.children_of("ad-instance")
        )

    def test_spec_matches_section6_description(self):
        spec = adex_spec()
        classes = spec.type_accessibility()
        assert classes[("adex", "head")] == "N"
        assert classes[("adex", "body")] == "N"
        assert classes[("head", "buyer-info")] == "Y"
        assert classes[("ad-instance", "real-estate")] == "Y"
        assert classes[("ad-instance", "employment")] == "N"

    def test_documents_conform_and_scale(self):
        dtd = adex_dtd()
        small = adex_document(seed=0, buyers=5, ads=10)
        large = adex_document(seed=0, buyers=20, ads=80)
        assert conforms(small, dtd)
        assert conforms(large, dtd)
        assert large.size() > 3 * small.size()

    def test_document_counts_exact(self):
        document = adex_document(seed=3, buyers=7, ads=13)
        assert len(document.find_all("buyer-info")) == 7
        assert len(document.find_all("ad-instance")) == 13

    def test_engine_ready(self):
        engine = adex_engine()
        exposed = engine.view_dtd_text("real-estate-buyer")
        assert "employment" not in exposed
        assert "buyer-info" in exposed


class TestQueries:
    def test_all_queries_parse(self):
        assert set(ADEX_QUERIES) == {"Q1", "Q2", "Q3", "Q4"}
        for name, text in ADEX_QUERY_TEXTS.items():
            assert str(adex_query(name)) != ""
            del text
        assert len(HOSPITAL_QUERIES) >= 5

    def test_expected_tables_cover_all_queries(self):
        assert set(ADEX_EXPECTED_REWRITES) == set(ADEX_QUERIES)
        assert set(ADEX_EXPECTED_OPTIMIZED) == set(ADEX_QUERIES)


class TestDatasets:
    def test_sizes_grow_geometrically(self):
        sizes = dataset_sizes(scale=0.1)
        ordered = [sizes[name] for name in ("D1", "D2", "D3", "D4")]
        assert ordered == sorted(ordered)
        assert ordered[-1] > 10 * ordered[0]

    def test_dataset_cached_per_process(self):
        first = dataset("D1", scale=0.1)
        second = dataset("D1", scale=0.1)
        assert first is second

    def test_all_scales_declared(self):
        assert set(DATASET_SCALES) == {"D1", "D2", "D3", "D4"}

    def test_datasets_conform(self):
        dtd = adex_dtd()
        assert conforms(dataset("D1", scale=0.1), dtd)


class TestCatalogWorkload:
    def test_dtd_is_recursive(self):
        from repro.workloads.catalog import catalog_dtd

        dtd = catalog_dtd()
        assert dtd.is_recursive()
        assert dtd.is_consistent()

    def test_flat_view_is_recursive(self):
        from repro.core.derive import derive
        from repro.workloads.catalog import catalog_dtd, flat_spec

        view = derive(flat_spec(catalog_dtd()))
        assert view.is_recursive()
        assert "children" not in view.exposed_dtd().to_dtd_text()

    def test_engine_answers_recursive_queries(self):
        from repro.workloads.catalog import catalog_document, catalog_engine

        engine = catalog_engine()
        document = catalog_document(seed=5)
        parts = engine.query("flat", "//part", document)
        assert len(parts) == len(document.find_all("part"))
        # nested assemblies flatten: assembly/assembly is a view path
        nested = engine.query("flat", "assembly/assembly/part", document)
        assert all(element.label == "part" for element in nested)
