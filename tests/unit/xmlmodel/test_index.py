"""Unit tests for the document label index."""

import pytest

from repro.core.options import ExecutionOptions
from repro.xmlmodel.index import DocumentIndex, build_index
from repro.xmlmodel.parser import parse_document

INDEXED = ExecutionOptions(use_index=True)

DOC = """
<lib>
  <shelf>
    <book><title>a</title><note><title>inner</title></note></book>
    <book><title>b</title></book>
  </shelf>
  <shelf>
    <book><title>c</title></book>
  </shelf>
  <title>library title</title>
</lib>
"""


@pytest.fixture(scope="module")
def tree():
    return parse_document(DOC)


@pytest.fixture(scope="module")
def index(tree):
    return build_index(tree)


class TestStructure:
    def test_size_counts_elements(self, tree, index):
        assert index.size() == tree.element_count()

    def test_positions_are_preorder(self, tree, index):
        elements = list(tree.iter_elements())
        positions = [index.position(element) for element in elements]
        assert positions == sorted(positions)
        assert positions[0] == 0

    def test_intervals_nest(self, tree, index):
        shelf = tree.element_children()[0]
        for element in shelf.iter_elements():
            assert index.is_descendant(shelf, element)
        assert not index.is_descendant(shelf, tree)

    def test_covers(self, tree, index):
        from repro.xmlmodel.nodes import XMLElement

        assert index.covers(tree)
        assert not index.covers(XMLElement("stranger"))


class TestLabelQueries:
    def test_all_with_label(self, tree, index):
        assert len(index.all_with_label("title")) == 5
        assert index.all_with_label("ghost") == []

    def test_descendants_with_label_matches_scan(self, tree, index):
        for element in tree.iter_elements():
            expected = [
                node
                for node in element.iter_elements()
                if node is not element and node.label == "title"
            ]
            actual = index.descendants_with_label(element, "title")
            assert [id(node) for node in actual] == [
                id(node) for node in expected
            ], element.label

    def test_excludes_self(self, tree, index):
        title = tree.find_all("title")[0]
        assert index.descendants_with_label(title, "title") == []

    def test_unknown_element_is_empty(self, index):
        from repro.xmlmodel.nodes import XMLElement

        assert index.descendants_with_label(XMLElement("x"), "title") == []

    def test_document_order_sort(self, tree, index):
        titles = index.all_with_label("title")
        shuffled = list(reversed(titles))
        assert index.document_order_sort(shuffled) == titles

    def test_document_order_sort_degrades_deterministically(
        self, tree, index
    ):
        """Uncovered entries (text nodes, foreign elements) must land
        in a deterministic spot: anchored right after their nearest
        indexed ancestor, orphans at the end, ties in input order."""
        from repro.xmlmodel.nodes import XMLElement

        books = index.all_with_label("book")
        first_title_text = tree.find_all("title")[0].children[0]
        last_title_text = tree.find_all("title")[-1].children[0]
        orphan_a = XMLElement("orphan-a")
        orphan_b = XMLElement("orphan-b")
        mixed = [
            orphan_b,
            last_title_text,
            books[2],
            first_title_text,
            books[0],
            orphan_a,
        ]
        result = index.document_order_sort(list(mixed))
        # covered elements first, in document order; each text node
        # anchored after its parent title's position; orphans last, in
        # input order (b before a — exactly as given)
        assert result == [
            books[0],
            first_title_text,
            books[2],
            last_title_text,
            orphan_b,
            orphan_a,
        ]
        # a pure function of (index, input): re-sorting gives the same
        # answer, and so does sorting an already-sorted list
        assert index.document_order_sort(list(mixed)) == result
        assert index.document_order_sort(list(result)) == result

    def test_document_order_sort_anchor_interleaves_with_covered(
        self, tree, index
    ):
        """A text node sorts directly after its anchor element even
        when that element is also in the input."""
        title = tree.find_all("title")[0]
        text = title.children[0]
        result = index.document_order_sort([text, title])
        assert result == [title, text]


class TestEvaluatorIntegration:
    QUERIES = [
        "//title",
        "//book/title",
        "shelf//title",
        "//book[title]",
        "//note//title | //shelf",
        '//book[title = "b"]',
        "//title/..",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_indexed_evaluation_equivalent(self, tree, index, text):
        from repro.xpath.evaluator import XPathEvaluator
        from repro.xpath.parser import parse_xpath

        query = parse_xpath(text)
        plain = XPathEvaluator()
        fast = XPathEvaluator(index=index)
        expected = [id(n) for n in plain.evaluate(query, tree, ordered=True)]
        actual = [id(n) for n in fast.evaluate(query, tree, ordered=True)]
        assert expected == actual, text

    def test_index_reduces_visits(self, index):
        from repro.workloads.adex import adex_document
        from repro.xpath.evaluator import XPathEvaluator
        from repro.xpath.parser import parse_xpath

        document = adex_document(seed=2, buyers=30, ads=120)
        big_index = build_index(document)
        query = parse_xpath("//r-e.warranty")
        plain = XPathEvaluator()
        plain.evaluate(query, document)
        fast = XPathEvaluator(index=big_index)
        fast.evaluate(query, document)
        assert fast.visits < plain.visits / 10

    def test_foreign_context_falls_back(self, tree, index):
        from repro.xmlmodel.parser import parse_document as parse
        from repro.xpath.evaluator import XPathEvaluator
        from repro.xpath.parser import parse_xpath

        other = parse("<lib><shelf><book><title>z</title></book></shelf></lib>")
        fast = XPathEvaluator(index=index)  # index of the OTHER tree
        result = fast.evaluate(parse_xpath("//title"), other)
        assert [node.string_value() for node in result] == ["z"]


class TestEngineIntegration:
    def test_use_index_equivalent_results(self):
        from repro.workloads.hospital import (
            hospital_document,
            hospital_dtd,
            nurse_spec,
        )
        from repro.core.engine import SecureQueryEngine
        from repro.xmlmodel.serialize import serialize

        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        document = hospital_document(seed=7, max_branch=4)
        for text in ("//patient/name", "//dummy2/medication"):
            plain = engine.query("nurse", text, document)
            indexed = engine.query(
                "nurse", text, document, options=INDEXED
            )
            assert [serialize(a) for a in plain] == [
                serialize(b) for b in indexed
            ]

    def test_invalidate_clears_index_cache(self):
        from repro.workloads.hospital import (
            hospital_document,
            hospital_dtd,
            nurse_spec,
        )
        from repro.core.engine import SecureQueryEngine

        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        document = hospital_document(seed=7)
        engine.query("nurse", "//patient", document, options=INDEXED)
        assert engine._indexes
        engine.invalidate()
        assert not engine._indexes
