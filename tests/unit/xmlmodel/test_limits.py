"""Input hardening and deep-document regression tests.

The parser and serializer are iterative (explicit stacks), so document
depth is bounded by memory, not ``sys.getrecursionlimit()``.  These
tests pin that down with a 100,000-deep round trip, and exercise the
``max_bytes`` / ``max_depth`` / ``max_attributes`` hardening limits of
:func:`repro.xmlmodel.parser.parse_document`.
"""

import sys

import pytest

from repro.errors import XMLLimitError, XMLParseError, error_code
from repro.xmlmodel.nodes import XMLElement
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serialize import pretty_print, serialize

#: Far beyond the default interpreter recursion limit (usually 1000).
DEEP = 100_000


def deep_text(depth: int) -> str:
    """``<d><d>...<leaf>x</leaf>...</d></d>`` nested ``depth`` deep."""
    return "<d>" * (depth - 1) + "<leaf>x</leaf>" + "</d>" * (depth - 1)


class TestDeepDocuments:
    def test_100k_deep_round_trip(self):
        # Regression: the old recursive parser/serializer died with
        # RecursionError around depth ~1000.  Compare serialized text,
        # not structurally_equal (which is still recursive).
        assert DEEP > sys.getrecursionlimit()
        text = deep_text(DEEP)
        root = parse_document(text)
        out = serialize(root)
        assert out == text
        assert serialize(parse_document(out)) == text

    def test_100k_deep_pretty_print(self):
        root = parse_document(deep_text(DEEP))
        pretty = pretty_print(root, indent="")
        assert pretty.count("\n") >= 2 * (DEEP - 2)
        assert serialize(parse_document(pretty)) == deep_text(DEEP)

    def test_deep_document_parent_links(self):
        root = parse_document(deep_text(5))
        node = root
        while node.children and not node.children[0].is_text:
            child = node.children[0]
            assert child.parent is node
            node = child
        assert node.label == "leaf"

    def test_wide_document_round_trip(self):
        text = "<r>" + "<c/>" * 50_000 + "</r>"
        assert serialize(parse_document(text)) == text


class TestMaxDepth:
    def test_at_the_limit(self):
        root = parse_document("<a><b><c/></b></a>", max_depth=3)
        assert root.children[0].children[0].label == "c"

    def test_over_the_limit(self):
        with pytest.raises(XMLLimitError) as excinfo:
            parse_document("<a><b><c/></b></a>", max_depth=2)
        error = excinfo.value
        assert error_code(error) == "E_PARSE_XML_LIMIT"
        assert "depth limit (2)" in str(error)

    def test_limit_error_is_a_parse_error(self):
        with pytest.raises(XMLParseError):
            parse_document("<a><b/></a>", max_depth=1)

    def test_deep_bomb_rejected_early(self):
        with pytest.raises(XMLLimitError):
            parse_document(deep_text(DEEP), max_depth=64)

    def test_siblings_do_not_count_as_depth(self):
        parse_document("<a><b/><b/><b/><b/></a>", max_depth=2)


class TestMaxBytes:
    def test_within_limit(self):
        parse_document("<a/>", max_bytes=4)

    def test_over_limit(self):
        with pytest.raises(XMLLimitError) as excinfo:
            parse_document("<a>xx</a>", max_bytes=4)
        assert "limit is 4" in str(excinfo.value)


class TestMaxAttributes:
    def test_at_the_limit(self):
        root = parse_document('<a x="1" y="2"/>', max_attributes=2)
        assert root.attributes == {"x": "1", "y": "2"}

    def test_over_the_limit(self):
        with pytest.raises(XMLLimitError) as excinfo:
            parse_document('<a x="1" y="2" z="3"/>', max_attributes=2)
        assert "more than 2 attributes" in str(excinfo.value)
        assert excinfo.value.line == 1

    def test_checked_per_element(self):
        parse_document('<a x="1"><b y="2"/></a>', max_attributes=1)


class TestLimitValidation:
    @pytest.mark.parametrize("field", ["max_bytes", "max_depth", "max_attributes"])
    @pytest.mark.parametrize("value", [0, -1, 1.5, "10", True])
    def test_bad_limit_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            parse_document("<a/>", **{field: value})

    def test_none_means_unlimited(self):
        parse_document(
            deep_text(2000), max_bytes=None, max_depth=None, max_attributes=None
        )
