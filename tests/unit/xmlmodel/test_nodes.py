"""Unit tests for the XML tree model."""

import pytest

from repro.xmlmodel.nodes import (
    XMLElement,
    XMLText,
    document_order_index,
    new_document,
    subtree_copy,
)


def build_sample():
    root = new_document("library")
    shelf = root.add_element("shelf", location="north")
    book = shelf.add_element("book")
    book.add_element("title").add_text("Dune")
    book.add_element("year").add_text("1965")
    shelf.add_element("book").add_element("title").add_text("Hyperion")
    root.add_element("shelf")
    return root


class TestConstruction:
    def test_append_sets_parent(self):
        root = XMLElement("a")
        child = root.append(XMLElement("b"))
        assert child.parent is root
        assert root.children == [child]

    def test_add_element_with_attributes(self):
        root = XMLElement("a")
        child = root.add_element("b", kind="x")
        assert child.attributes == {"kind": "x"}

    def test_add_text(self):
        root = XMLElement("a")
        text = root.add_text("hello")
        assert text.is_text and not text.is_element
        assert text.parent is root

    def test_extend(self):
        root = XMLElement("a")
        root.extend([XMLElement("b"), XMLText("t")])
        assert len(root.children) == 2
        assert all(child.parent is root for child in root.children)

    def test_constructor_children(self):
        child = XMLElement("b")
        root = XMLElement("a", children=[child])
        assert child.parent is root


class TestNavigation:
    def test_element_and_text_children(self):
        root = XMLElement("a")
        root.add_element("b")
        root.add_text("t")
        root.add_element("c")
        assert [el.label for el in root.element_children()] == ["b", "c"]
        assert [tx.value for tx in root.text_children()] == ["t"]

    def test_child_elements_by_label(self):
        root = build_sample()
        assert len(root.child_elements("shelf")) == 2
        assert root.child_elements("book") == []

    def test_first_child(self):
        root = build_sample()
        assert root.first_child("shelf").get("location") == "north"
        assert root.first_child("nothing") is None

    def test_ancestors_nearest_first(self):
        root = build_sample()
        title = root.find_all("title")[0]
        labels = [node.label for node in title.ancestors()]
        assert labels == ["book", "shelf", "library"]

    def test_root(self):
        root = build_sample()
        deepest = root.find_all("title")[0]
        assert deepest.root() is root

    def test_iter_document_order(self):
        root = build_sample()
        labels = [
            node.label for node in root.iter_elements()
        ]
        assert labels == [
            "library",
            "shelf",
            "book",
            "title",
            "year",
            "book",
            "title",
            "shelf",
        ]

    def test_find_all(self):
        root = build_sample()
        assert len(root.find_all("title")) == 2
        assert root.find_all("library") == [root]


class TestMeasurement:
    def test_size_counts_text_nodes(self):
        root = build_sample()
        assert root.size() == 8 + 3  # 8 elements + 3 text nodes

    def test_element_count(self):
        assert build_sample().element_count() == 8

    def test_height(self):
        root = build_sample()
        assert root.height() == 4  # library/shelf/book/title
        assert XMLElement("leaf").height() == 1

    def test_depth(self):
        root = build_sample()
        assert root.depth() == 1
        assert root.find_all("title")[0].depth() == 4


class TestValues:
    def test_string_value_concatenates_descendant_text(self):
        root = build_sample()
        book = root.find_all("book")[0]
        assert book.string_value() == "Dune1965"

    def test_attribute_get_set(self):
        element = XMLElement("a")
        assert element.get("x") is None
        assert element.get("x", "d") == "d"
        element.set("x", "1")
        assert element.get("x") == "1"


class TestEqualityAndCopy:
    def test_structural_equality(self):
        assert build_sample().structurally_equal(build_sample())

    def test_structural_inequality_on_text(self):
        a = build_sample()
        b = build_sample()
        b.find_all("title")[0].children[0].value = "Other"
        assert not a.structurally_equal(b)

    def test_structural_inequality_on_attributes(self):
        a = build_sample()
        b = build_sample()
        b.first_child("shelf").set("location", "south")
        assert not a.structurally_equal(b)

    def test_structural_inequality_on_arity(self):
        a = build_sample()
        b = build_sample()
        b.add_element("extra")
        assert not a.structurally_equal(b)

    def test_subtree_copy_is_deep_and_detached(self):
        root = build_sample()
        copy = subtree_copy(root)
        assert copy.structurally_equal(root)
        assert copy is not root
        copy.find_all("title")[0].children[0].value = "Changed"
        assert root.find_all("title")[0].children[0].value == "Dune"

    def test_subtree_copy_of_text(self):
        text = XMLText("v")
        copy = subtree_copy(text)
        assert copy.is_text and copy.value == "v" and copy.parent is None


def test_document_order_index():
    root = build_sample()
    order = document_order_index(root)
    nodes = list(root.iter())
    for earlier, later in zip(nodes, nodes[1:]):
        assert order[id(earlier)] < order[id(later)]


def test_repr_is_informative():
    assert "library" in repr(build_sample())
    assert "XMLText" in repr(XMLText("some quite long text value here"))


def test_labels_interned_at_construction():
    """Every element of a type shares one label string object — parsed
    or hand-built — so hot-loop label compares use the identity fast
    path."""
    from repro.xmlmodel.parser import parse_document

    built = XMLElement("pat" + "ient")  # defeat compile-time interning
    parsed = parse_document("<patient><patient/></patient>")
    children = parsed.element_children()
    assert parsed.label is built.label
    assert children[0].label is parsed.label
