"""Unit tests for the XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmlmodel.parser import parse_document, parse_fragment
from repro.xmlmodel.serialize import serialize


class TestBasicParsing:
    def test_single_empty_element(self):
        root = parse_document("<a/>")
        assert root.label == "a"
        assert root.children == []

    def test_open_close(self):
        root = parse_document("<a></a>")
        assert root.label == "a" and root.children == []

    def test_nested_elements(self):
        root = parse_document("<a><b><c/></b></a>")
        assert root.children[0].children[0].label == "c"

    def test_text_content(self):
        root = parse_document("<a>hello</a>")
        assert root.children[0].value == "hello"

    def test_mixed_content_preserved(self):
        root = parse_document("<a>x<b/>y</a>")
        kinds = [child.is_text for child in root.children]
        assert kinds == [True, False, True]

    def test_whitespace_between_elements_dropped(self):
        root = parse_document("<a>\n  <b/>\n  <c/>\n</a>")
        assert [child.label for child in root.children] == ["b", "c"]

    def test_keep_whitespace_flag(self):
        root = parse_document("<a> <b/> </a>", keep_whitespace=True)
        assert root.children[0].is_text

    def test_names_with_dots_and_dashes(self):
        root = parse_document("<r-e.warranty>1y</r-e.warranty>")
        assert root.label == "r-e.warranty"


class TestAttributes:
    def test_double_and_single_quotes(self):
        root = parse_document("<a x=\"1\" y='2'/>")
        assert root.attributes == {"x": "1", "y": "2"}

    def test_attribute_entities(self):
        root = parse_document('<a x="a&amp;b&lt;c"/>')
        assert root.get("x") == "a&b<c"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document('<a x="1" x="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a x=1/>")


class TestEntitiesAndSpecials:
    def test_standard_entities(self):
        root = parse_document("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert root.children[0].value == "<>&'\""

    def test_numeric_character_references(self):
        root = parse_document("<a>&#65;&#x42;</a>")
        assert root.children[0].value == "AB"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&nope;</a>")

    def test_comments_skipped(self):
        root = parse_document("<!-- head --><a><!-- inner --><b/></a>")
        assert [child.label for child in root.element_children()] == ["b"]

    def test_processing_instructions_skipped(self):
        root = parse_document('<?xml version="1.0"?><a><?pi data?></a>')
        assert root.label == "a" and root.children == []

    def test_doctype_skipped(self):
        text = '<!DOCTYPE a [<!ELEMENT a (b)*>]><a><b/></a>'
        assert parse_document(text).label == "a"

    def test_cdata(self):
        root = parse_document("<a><![CDATA[x < y & z]]></a>")
        assert root.children[0].value == "x < y & z"


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(XMLParseError):
            parse_document("")

    def test_mismatched_tags(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<a><b></a></b>")
        assert "mismatched" in str(info.value)

    def test_unclosed_element(self):
        with pytest.raises(XMLParseError):
            parse_document("<a><b>")

    def test_trailing_content(self):
        with pytest.raises(XMLParseError):
            parse_document("<a/><b/>")

    def test_error_carries_location(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<a>\n<b x=></b></a>")
        assert info.value.line == 2


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "<a/>",
            '<a x="1"><b>t</b><c/><b>u&amp;v</b></a>',
            "<a><b>x</b>middle<c/></a>",
            '<deep><er><still x="&quot;"/></er></deep>',
        ],
    )
    def test_serialize_parse_roundtrip(self, text):
        tree = parse_document(text)
        again = parse_document(serialize(tree))
        assert tree.structurally_equal(again)


def test_parse_fragment_multiple_roots():
    elements = parse_fragment("<a/><b><c/></b>")
    assert [element.label for element in elements] == ["a", "b"]
    assert all(element.parent is None for element in elements)
