"""Unit tests for XML serialization."""

from repro.xmlmodel.nodes import XMLElement
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serialize import (
    escape_attribute,
    escape_text,
    pretty_print,
    serialize,
)


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_no_op_on_plain_text(self):
        assert escape_text("plain") == "plain"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(XMLElement("a")) == "<a/>"

    def test_empty_element_with_attributes(self):
        element = XMLElement("a", attributes={"x": "1"})
        assert serialize(element) == '<a x="1"/>'

    def test_attributes_sorted_for_determinism(self):
        element = XMLElement("a", attributes={"z": "1", "a": "2"})
        assert serialize(element) == '<a a="2" z="1"/>'

    def test_nested(self):
        root = XMLElement("a")
        root.add_element("b").add_text("x<y")
        assert serialize(root) == "<a><b>x&lt;y</b></a>"

    def test_text_node(self):
        root = XMLElement("a")
        text = root.add_text("t&t")
        assert serialize(text) == "t&amp;t"


class TestPrettyPrint:
    def test_leaf_with_text_on_one_line(self):
        root = parse_document("<a><b>t</b></a>")
        assert pretty_print(root) == "<a>\n  <b>t</b>\n</a>"

    def test_empty_leaf(self):
        assert pretty_print(XMLElement("a")) == "<a/>"

    def test_indentation_depth(self):
        root = parse_document("<a><b><c/></b></a>")
        lines = pretty_print(root).split("\n")
        assert lines[2] == "    <c/>"

    def test_pretty_output_reparses_equal(self):
        root = parse_document('<a x="1"><b>text</b><c><d/></c></a>')
        assert parse_document(pretty_print(root)).structurally_equal(root)
