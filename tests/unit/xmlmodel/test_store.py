"""The columnar :class:`~repro.xmlmodel.store.NodeTable`: preorder
numbering, subtree intervals, postings, child links, string values, and
the row <-> node mapping must all agree with the object tree."""

import pytest

from repro.workloads.hospital import hospital_document
from repro.xmlmodel.nodes import XMLElement, new_document
from repro.xmlmodel.store import TEXT_LABEL, NodeTable, build_node_table


@pytest.fixture(scope="module")
def document():
    return hospital_document(seed=7, max_branch=4)


@pytest.fixture(scope="module")
def table(document):
    return build_node_table(document)


def _preorder(root):
    return list(root.iter())


def test_rows_are_document_order(document, table):
    nodes = _preorder(document)
    assert table.size == len(nodes)
    assert len(table) == len(nodes)
    for row, node in enumerate(nodes):
        assert table.nodes[row] is node
        assert table.row(node) == row
        assert table.node_at(row) is node
        assert table.covers(node)


def test_root_row_and_interval(document, table):
    assert table.row(document) == 0
    assert table.interval(0) == (0, table.size)


def test_intervals_enclose_exactly_the_subtree(document, table):
    for row, node in enumerate(_preorder(document)):
        start, end = table.interval(row)
        assert start == row
        if node.is_element:
            subtree = sum(1 for _ in node.iter())
        else:
            subtree = 1
        assert end - start == subtree
        # every descendant row falls inside, nothing else does
        if node.is_element:
            for descendant in node.iter():
                assert start <= table.row(descendant) < end


def test_parent_and_depth_columns(document, table):
    assert table.parent[0] == -1
    assert table.depth[0] == 0
    for row in range(1, table.size):
        node = table.nodes[row]
        assert table.nodes[table.parent[row]] is node.parent
        assert table.depth[row] == table.depth[table.parent[row]] + 1


def test_child_links_reconstruct_children(document, table):
    for row, node in enumerate(_preorder(document)):
        if not node.is_element:
            assert table.first_child[row] == -1
            continue
        linked = []
        child = table.first_child[row]
        while child != -1:
            linked.append(table.nodes[child])
            child = table.next_sibling[child]
        assert linked == node.children


def test_labels_are_interned_and_partitioned(document, table):
    assert table.labels[table.text_label_id] == TEXT_LABEL
    for row, node in enumerate(_preorder(document)):
        if node.is_element:
            assert table.labels[table.label_ids[row]] == node.label
            assert table.is_element_row(row)
        else:
            assert table.label_ids[row] == table.text_label_id
            assert not table.is_element_row(row)
    # postings partition the rows: each row appears in exactly its
    # label's posting, and each posting is strictly ascending
    total = 0
    for label_id, posting in enumerate(table.postings):
        total += len(posting)
        assert list(posting) == sorted(posting)
        assert len(set(posting)) == len(posting)
        for row in posting:
            assert table.label_ids[row] == label_id
    assert total == table.size


def test_posting_lookup(document, table):
    patients = [
        row for row, node in enumerate(_preorder(document))
        if node.is_element and node.label == "patient"
    ]
    assert list(table.posting("patient")) == patients
    assert table.posting("no-such-label") == ()
    assert table.label_id("no-such-label") is None


def test_string_value_matches_nodes(document, table):
    for row, node in enumerate(_preorder(document)):
        assert table.string_value(row) == node.string_value()


def test_descendant_rows_with_label(document, table):
    for row, node in enumerate(_preorder(document)):
        if not node.is_element:
            continue
        expected = [
            table.row(d)
            for d in node.iter_elements()
            if d is not node and d.label == "name"
        ]
        assert table.descendant_rows_with_label(row, "name") == expected
    assert table.descendant_rows_with_label(0, "no-such-label") == []


def test_element_count(document, table):
    assert table.element_count() == document.element_count()


def test_foreign_nodes_are_not_covered(table):
    stranger = new_document("stranger")
    assert not table.covers(stranger)
    assert table.row(stranger) is None


def test_single_element_document():
    table = NodeTable(new_document("only"))
    assert table.size == 1
    assert table.interval(0) == (0, 1)
    assert table.first_child[0] == -1
    assert table.string_value(0) == ""


def test_text_rows_between_elements():
    root = new_document("r")
    root.add_text("a")
    child = root.add_element("c")
    child.add_text("b")
    root.add_text("c")
    table = NodeTable(root)
    assert table.size == 5
    assert table.string_value(0) == "abc"
    assert table.string_value(table.row(child)) == "b"
    assert list(table.postings[table.text_label_id]) == [
        table.row(node) for node in root.iter() if node.is_text
    ]


def test_repr_mentions_shape(table):
    text = repr(table)
    assert "NodeTable" in text and "rows" in text
