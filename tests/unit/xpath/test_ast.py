"""Unit tests for the XPath AST, its smart constructors (the paper's
empty-query algebra) and serialization."""

from repro.xpath.ast import (
    Absolute,
    Descendant,
    EMPTY,
    EPSILON,
    Empty,
    Label,
    Param,
    QAnd,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Slash,
    TEXT,
    TRUE,
    FALSE,
    Union,
    WILDCARD,
    descendant,
    label_path,
    path_seq,
    qand,
    qnot,
    qor,
    qpath,
    qualified,
    slash,
    union,
)


class TestEmptyQueryAlgebra:
    def test_slash_annihilates_on_empty(self):
        assert slash(EMPTY, Label("a")) is EMPTY
        assert slash(Label("a"), EMPTY) is EMPTY

    def test_slash_epsilon_identity(self):
        a = Label("a")
        assert slash(EPSILON, a) is a
        assert slash(a, EPSILON) is a

    def test_union_drops_empty(self):
        a = Label("a")
        assert union([EMPTY, a, EMPTY]) is a

    def test_union_of_nothing_is_empty(self):
        assert union([]).is_empty

    def test_union_dedups_structurally(self):
        merged = union([label_path("a", "b"), label_path("a", "b"), Label("c")])
        assert isinstance(merged, Union)
        assert len(merged.branches) == 2

    def test_union_flattens(self):
        nested = union([union([Label("a"), Label("b")]), Label("c")])
        assert len(nested.branches) == 3

    def test_descendant_of_empty(self):
        assert descendant(EMPTY).is_empty

    def test_qualified_constant_folding(self):
        a = Label("a")
        assert qualified(a, TRUE) is a
        assert qualified(a, FALSE).is_empty
        assert qualified(EMPTY, QPath(a)).is_empty


class TestBooleanAlgebra:
    def test_qand_folding(self):
        q = QPath(Label("a"))
        assert qand(TRUE, q) is q
        assert qand(q, TRUE) is q
        assert isinstance(qand(FALSE, q), QBool)
        assert qand(q, q) is q

    def test_qor_folding(self):
        q = QPath(Label("a"))
        assert qor(FALSE, q) is q
        assert qor(q, FALSE) is q
        assert qor(TRUE, q).value is True
        assert qor(q, q) is q

    def test_qnot_folding(self):
        q = QPath(Label("a"))
        assert qnot(TRUE).value is False
        assert qnot(qnot(q)) is q

    def test_qpath_folding(self):
        assert qpath(EMPTY).value is False
        assert qpath(EPSILON).value is True


class TestStructuralEquality:
    def test_equal_paths(self):
        assert label_path("a", "b") == label_path("a", "b")
        assert hash(label_path("a", "b")) == hash(label_path("a", "b"))

    def test_different_paths(self):
        assert label_path("a", "b") != label_path("b", "a")
        assert Label("a") != WILDCARD

    def test_params(self):
        assert Param("x") == Param("x")
        assert Param("x") != Param("y")

    def test_qualifier_equality(self):
        left = QAnd(QPath(Label("a")), QPath(Label("b")))
        right = QAnd(QPath(Label("a")), QPath(Label("b")))
        assert left == right and hash(left) == hash(right)


class TestSerialization:
    def test_steps(self):
        assert str(label_path("a", "b", "c")) == "a/b/c"
        assert str(WILDCARD) == "*"
        assert str(TEXT) == "text()"
        assert str(EPSILON) == "."
        assert str(EMPTY) == "0"

    def test_descendant_forms(self):
        assert str(Descendant(Label("a"))) == ".//a"
        assert str(slash(Label("a"), Descendant(Label("b")))) == "a//b"

    def test_union_parenthesized(self):
        assert str(union([Label("a"), Label("b")])) == "(a | b)"

    def test_qualified(self):
        q = qualified(Label("a"), QPath(Label("b")))
        assert str(q) == "a[b]"

    def test_equality_with_constant_and_param(self):
        assert str(QEquals(Label("a"), "5")) == 'a = "5"'
        assert str(QEquals(Label("a"), Param("p"))) == "a = $p"

    def test_boolean_connectives(self):
        expression = QOr(
            QAnd(QPath(Label("a")), QPath(Label("b"))), QNot(QPath(Label("c")))
        )
        assert str(expression) == "(a and b) or not(c)"

    def test_absolute(self):
        assert str(Absolute(label_path("a", "b"))) == "/a/b"
        assert str(Absolute(Descendant(Label("a")))) == "//a"
        assert (
            str(Absolute(slash(Descendant(Label("a")), Label("b")))) == "//a/b"
        )


class TestStructuralHelpers:
    def test_size(self):
        assert Label("a").size() == 1
        assert label_path("a", "b").size() == 3  # slash + two labels
        assert qualified(Label("a"), QPath(Label("b"))).size() == 4

    def test_iter_nodes_postorder(self):
        query = slash(Label("a"), Label("b"))
        nodes = list(query.iter_nodes())
        assert nodes[-1] is query
        assert isinstance(nodes[0], Label)

    def test_path_seq(self):
        assert path_seq([]) is EPSILON
        assert path_seq([Label("a")]) == Label("a")


class TestSubstitution:
    def test_substitute_in_equality(self):
        query = qualified(Label("a"), QEquals(Label("b"), Param("w")))
        bound = query.substitute({"w": "5"})
        assert str(bound) == 'a[b = "5"]'

    def test_substitute_untouched_without_params(self):
        query = label_path("a", "b")
        assert query.substitute({}) == query

    def test_parameters_listed(self):
        query = qualified(
            Label("a"),
            QAnd(QEquals(Label("b"), Param("x")), QEquals(Label("c"), Param("y"))),
        )
        assert query.parameters() == {"x", "y"}
