"""The columnar (set-at-a-time) plan backend must be a drop-in
equivalent of the object-tree interpreter: identical result lists —
content *and* document order — for every fragment-``C`` construct, at
the root and at arbitrary inner context nodes, with graceful fallback
for contexts outside the store's tree."""

import pytest

from repro.workloads.hospital import hospital_document
from repro.xmlmodel.nodes import new_document
from repro.xmlmodel.store import build_node_table
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import PlanRuntime, compile_path

QUERIES = [
    ".",
    "0",
    "*",
    "text()",
    "..",
    "//patient",
    "/hospital/dept",
    "/hospital//dept//patient",
    "//dept/patientInfo/patient/name",
    "//patient/name/text()",
    "//patient[wardNo]",
    '//patient[wardNo = "2"]/name',
    "//treatment//medication",
    "(//patient/name | //staffInfo/name)",
    "//dept[*//bill]//patient",
    "//patient[not(wardNo) or name]",
    "//patient/..",
    "//patient[name and wardNo]",
    "//*",
    "//patient/*",
    "//name/../wardNo",
    "(//patient | //patient/name | 0)",
    "//dept[.//patient//text() = 'no-such-text']",
]


@pytest.fixture(scope="module")
def document():
    return hospital_document(seed=11, max_branch=4)


@pytest.fixture(scope="module")
def store(document):
    return build_node_table(document)


def _interpreter(query, contexts, ordered=True):
    return XPathEvaluator().evaluate(query, contexts, ordered=ordered)


@pytest.mark.parametrize("text", QUERIES)
def test_columnar_matches_interpreter_at_root(document, store, text):
    query = parse_xpath(text)
    expected = _interpreter(query, document)
    actual = compile_path(query).execute(
        document, runtime=PlanRuntime(store=store), ordered=True
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]


@pytest.mark.parametrize("text", QUERIES)
def test_columnar_matches_interpreter_at_inner_contexts(
    document, store, text
):
    contexts = document.find_all("dept") + document.find_all("patient")
    assert contexts, "workload document must contain depts and patients"
    query = parse_xpath(text)
    expected = _interpreter(query, list(contexts))
    actual = compile_path(query).execute(
        list(contexts), runtime=PlanRuntime(store=store), ordered=True
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]


def test_columnar_results_are_document_nodes(document, store):
    plan = compile_path(parse_xpath("//patient"))
    results = plan.execute(document, store=store)
    originals = {id(node) for node in document.iter()}
    assert results
    assert all(id(node) in originals for node in results)


def test_columnar_results_come_back_sorted_without_order_flag(
    document, store
):
    """Row frontiers are inherently in document order, so even
    ``ordered=False`` executions return document order — pinned so
    callers can rely on it."""
    plan = compile_path(parse_xpath("(//name | //patient)"))
    results = plan.execute(document, store=store, ordered=False)
    position = {id(node): i for i, node in enumerate(document.iter())}
    ranks = [position[id(node)] for node in results]
    assert ranks == sorted(ranks)


def test_foreign_context_falls_back_to_object_backend(document, store):
    other = hospital_document(seed=99, max_branch=3)
    plan = compile_path(parse_xpath("//patient"))
    expected = _interpreter(parse_xpath("//patient"), other)
    actual = plan.execute(other, runtime=PlanRuntime(store=store), ordered=True)
    assert [id(node) for node in actual] == [id(node) for node in expected]


def test_mixed_foreign_and_covered_contexts_fall_back(document, store):
    other = new_document("hospital")
    plan = compile_path(parse_xpath(".//*"))
    contexts = [document, other]
    expected = _interpreter(parse_xpath(".//*"), contexts)
    actual = plan.execute(
        contexts, runtime=PlanRuntime(store=store), ordered=True
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]


def test_absolute_path_from_inner_context(document, store):
    """An absolute path re-roots at the document regardless of the
    context node, on both backends."""
    patient = document.find_all("patient")[0]
    query = parse_xpath("/hospital/dept")
    expected = _interpreter(query, patient)
    actual = compile_path(query).execute(
        patient, runtime=PlanRuntime(store=store), ordered=True
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]


def test_empty_context_list(document, store):
    plan = compile_path(parse_xpath("//patient"))
    assert plan.execute([], runtime=PlanRuntime(store=store)) == []


def test_text_context_rows(document, store):
    """Text nodes as contexts: ``.`` keeps them, element steps skip
    them — identical on both backends."""
    texts = [node for node in document.iter() if node.is_text][:5]
    assert texts
    for text_query in (".", "*", "text()", ".."):
        query = parse_xpath(text_query)
        expected = _interpreter(query, list(texts))
        actual = compile_path(query).execute(
            list(texts), runtime=PlanRuntime(store=store), ordered=True
        )
        assert [id(n) for n in actual] == [id(n) for n in expected]


def test_attribute_qualifiers(store, document):
    from repro.core.naive import annotate_accessibility
    from repro.core.spec import AccessSpec
    from repro.workloads.hospital import hospital_dtd, nurse_spec

    annotated = hospital_document(seed=3, max_branch=3)
    annotate_accessibility(
        annotated, nurse_spec(hospital_dtd()).bind(wardNo="1")
    )
    annotated_store = build_node_table(annotated)
    for text in (
        "//patient[@accessibility]",
        '//patient[@accessibility = "1"]',
        '//*[@accessibility = "0"]',
        '//dept[not(@accessibility = "0")]//name',
    ):
        query = parse_xpath(text)
        expected = _interpreter(query, annotated)
        actual = compile_path(query).execute(
            annotated, runtime=PlanRuntime(store=annotated_store), ordered=True
        )
        assert [id(n) for n in actual] == [id(n) for n in expected]


def test_columnar_counts_work_in_visits(document, store):
    """The columnar backend reports its own work through the same
    ``visits`` counter (rows scanned/emitted) — nonzero for any real
    scan, so reports stay meaningful."""
    runtime = PlanRuntime(store=store)
    compile_path(parse_xpath("//patient/name")).execute(
        document, runtime=runtime
    )
    assert runtime.visits > 0
