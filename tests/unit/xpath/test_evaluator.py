"""Unit tests for the XPath evaluator (set semantics of Section 2)."""

import pytest

from repro.errors import XPathEvaluationError
from repro.xmlmodel.parser import parse_document
from repro.xpath.evaluator import XPathEvaluator, evaluate, evaluate_qualifier
from repro.xpath.parser import parse_qualifier, parse_xpath

DOCUMENT = """
<store>
  <dept kind="food">
    <item><name>apple</name><price>3</price></item>
    <item><name>bread</name><price>2</price></item>
  </dept>
  <dept kind="tools">
    <item><name>hammer</name><price>9</price>
      <part><name>handle</name></part>
    </item>
  </dept>
  <manager><name>mo</name></manager>
</store>
"""


@pytest.fixture(scope="module")
def store():
    return parse_document(DOCUMENT)


def labels(nodes):
    return [node.label for node in nodes]


def values(nodes):
    return sorted(node.string_value() for node in nodes)


class TestSteps:
    def test_label_step(self, store):
        assert labels(evaluate(parse_xpath("dept"), store)) == ["dept", "dept"]

    def test_missing_label(self, store):
        assert evaluate(parse_xpath("nothing"), store) == []

    def test_wildcard(self, store):
        assert labels(evaluate(parse_xpath("*"), store)) == [
            "dept",
            "dept",
            "manager",
        ]

    def test_epsilon(self, store):
        assert evaluate(parse_xpath("."), store) == [store]

    def test_empty_query(self, store):
        assert evaluate(parse_xpath("0"), store) == []

    def test_text_step(self, store):
        apple_name = store.find_all("name")[0]
        texts = evaluate(parse_xpath("text()"), apple_name)
        assert [t.value for t in texts] == ["apple"]

    def test_chain(self, store):
        assert values(evaluate(parse_xpath("dept/item/name"), store)) == [
            "apple",
            "bread",
            "hammer",
        ]


class TestDescendant:
    def test_descendant_or_self_includes_context(self, store):
        result = evaluate(parse_xpath("//."), store)
        assert store in result

    def test_descendant_label(self, store):
        # includes the nested part/name
        assert len(evaluate(parse_xpath("//name"), store)) == 5

    def test_descendant_mid_path(self, store):
        assert values(evaluate(parse_xpath("dept//name"), store)) == [
            "apple",
            "bread",
            "hammer",
            "handle",
        ]

    def test_descendant_no_duplicates(self, store):
        result = evaluate(parse_xpath("//item//name"), store)
        assert len(result) == len({id(node) for node in result})

    def test_descendant_text(self, store):
        texts = evaluate(parse_xpath("manager//text()"), store)
        assert [t.value for t in texts] == ["mo"]


class TestAbsolute:
    def test_absolute_from_nested_context(self, store):
        handle = store.find_all("part")[0]
        result = evaluate(parse_xpath("/store/manager/name"), handle)
        assert values(result) == ["mo"]

    def test_leading_descendant_includes_root(self, store):
        result = evaluate(parse_xpath("//store"), store)
        assert result == [store]

    def test_absolute_wrong_root_label(self, store):
        assert evaluate(parse_xpath("/shop/dept"), store) == []


class TestUnionAndSet:
    def test_union(self, store):
        result = evaluate(parse_xpath("dept | manager"), store)
        assert labels(result) == ["dept", "dept", "manager"]

    def test_union_dedup(self, store):
        result = evaluate(parse_xpath("dept | *"), store)
        assert len(result) == 3

    def test_ordered_results(self, store):
        result = evaluate(
            parse_xpath("manager | dept"), store, ordered=True
        )
        assert labels(result) == ["dept", "dept", "manager"]


class TestQualifiers:
    def test_existence(self, store):
        result = evaluate(parse_xpath("*[name]"), store)
        assert labels(result) == ["manager"]

    def test_nested_path_qualifier(self, store):
        result = evaluate(parse_xpath("dept[item/part]"), store)
        assert [node.get("kind") for node in result] == ["tools"]

    def test_equality_on_element_string_value(self, store):
        result = evaluate(parse_xpath('dept/item[price = "9"]/name'), store)
        assert values(result) == ["hammer"]

    def test_equality_via_text_step(self, store):
        result = evaluate(parse_xpath('//item[name/text() = "apple"]'), store)
        assert len(result) == 1

    def test_boolean_connectives(self, store):
        both = evaluate(parse_xpath("//item[name and part]"), store)
        assert len(both) == 1
        either = evaluate(parse_xpath("//*[part or price]"), store)
        assert len(either) == 3
        negated = evaluate(parse_xpath("//item[not(part)]"), store)
        assert len(negated) == 2

    def test_attribute_tests(self, store):
        assert len(evaluate(parse_xpath("*[@kind]"), store)) == 2
        food = evaluate(parse_xpath('*[@kind = "food"]'), store)
        assert len(food) == 1

    def test_relative_descendant_qualifier(self, store):
        result = evaluate(parse_xpath("dept[//part]"), store)
        assert [node.get("kind") for node in result] == ["tools"]

    def test_qualifier_helper(self, store):
        dept = store.element_children()[0]
        assert evaluate_qualifier(parse_qualifier("[item]"), dept)
        assert not evaluate_qualifier(parse_qualifier("[part]"), dept)


class TestParameters:
    def test_unbound_parameter_raises(self, store):
        with pytest.raises(XPathEvaluationError):
            evaluate(parse_xpath("dept[item = $p]"), store)

    def test_bound_parameter_evaluates(self, store):
        query = parse_xpath('//item[price = $p]/name').substitute({"p": "2"})
        assert values(evaluate(query, store)) == ["bread"]


class TestVisitCounting:
    def test_visits_accumulate_and_reset(self, store):
        evaluator = XPathEvaluator()
        evaluator.evaluate(parse_xpath("//name"), store)
        first = evaluator.visits
        assert first > 0
        evaluator.evaluate(parse_xpath("//name"), store)
        assert evaluator.visits > first
        evaluator.reset_counters()
        assert evaluator.visits == 0

    def test_precise_path_visits_fewer_nodes(self, store):
        evaluator = XPathEvaluator()
        evaluator.evaluate(parse_xpath("manager/name"), store)
        precise = evaluator.visits
        evaluator.reset_counters()
        evaluator.evaluate(parse_xpath("//name"), store)
        assert evaluator.visits > precise

    def test_multiple_contexts(self, store):
        depts = evaluate(parse_xpath("dept"), store)
        names = evaluate(parse_xpath("item/name"), depts)
        assert len(names) == 3
