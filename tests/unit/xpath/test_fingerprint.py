"""Canonical query fingerprints (:mod:`repro.xpath.fingerprint`)."""

import pytest

from repro.xpath.ast import Param
from repro.xpath.fingerprint import (
    UNPARSED_SHAPE,
    Fingerprint,
    fingerprint_shape,
    query_fingerprint,
)
from repro.xpath.parser import parse_xpath


class TestShape:
    def test_value_predicates_are_masked(self):
        shape = fingerprint_shape(parse_xpath('//patient[wardNo = "7"]'))
        assert '"7"' not in shape
        assert "$_" in shape

    def test_attribute_value_predicates_are_masked(self):
        shape = fingerprint_shape(parse_xpath('//drug[@name = "aspirin"]'))
        assert "aspirin" not in shape

    def test_parameters_are_masked(self):
        literal = fingerprint_shape(parse_xpath('//patient[wardNo = "7"]'))
        parameterized = fingerprint_shape(
            parse_xpath("//patient[wardNo = $ward]")
        )
        assert literal == parameterized

    def test_structure_is_preserved(self):
        a = fingerprint_shape(parse_xpath("//patient/name"))
        b = fingerprint_shape(parse_xpath("//patient/phone"))
        assert a != b

    def test_boolean_qualifiers_survive(self):
        with_pred = fingerprint_shape(parse_xpath("//patient[name]"))
        without = fingerprint_shape(parse_xpath("//patient"))
        assert with_pred != without


class TestQueryFingerprint:
    def test_same_shape_same_digest(self):
        a = query_fingerprint('//patient[wardNo = "1"]')
        b = query_fingerprint('//patient[wardNo = "7"]')
        assert a == b
        assert a.digest == b.digest
        assert a.shape == b.shape

    def test_different_shape_different_digest(self):
        a = query_fingerprint("//patient/name")
        b = query_fingerprint("//patient")
        assert a != b

    def test_accepts_parsed_ast(self):
        parsed = parse_xpath('//patient[wardNo = "7"]')
        assert query_fingerprint(parsed) == query_fingerprint(
            '//patient[wardNo = "7"]'
        )

    def test_digest_is_stable_across_processes(self):
        # blake2b of the shape text, not Python's salted hash(); this
        # pin catches accidental re-hashing schemes
        from hashlib import blake2b

        fp = query_fingerprint("//patient/name")
        expected = blake2b(
            fp.shape.encode("utf-8"), digest_size=8
        ).hexdigest()
        assert fp.digest == expected
        assert len(fp.digest) == 16
        int(fp.digest, 16)  # hex

    def test_unparseable_query_gets_fallback(self):
        broken = query_fingerprint("//patient[")
        assert broken.shape == UNPARSED_SHAPE
        # distinct broken texts keep distinct digests
        assert broken != query_fingerprint("///")

    def test_str_is_digest(self):
        fp = query_fingerprint("//patient")
        assert isinstance(fp, Fingerprint)
        assert str(fp) == fp.digest

    def test_compares_against_plain_strings(self):
        fp = query_fingerprint("//patient")
        assert fp == fp.digest
        assert fp != "not-a-digest"

    def test_hashable_by_digest(self):
        a = query_fingerprint('//patient[wardNo = "1"]')
        b = query_fingerprint('//patient[wardNo = "2"]')
        assert len({a, b}) == 1

    def test_masking_does_not_mutate_the_ast(self):
        parsed = parse_xpath('//patient[wardNo = "7"]')
        before = str(parsed)
        query_fingerprint(parsed)
        assert str(parsed) == before

    def test_union_and_nested_predicates(self):
        shape = fingerprint_shape(
            parse_xpath(
                '//patient[wardNo = "7"]/name | //dept[@id = "x"]//bed'
            )
        )
        assert '"7"' not in shape and '"x"' not in shape

    def test_mask_param_builds_on_ast_param(self):
        # the mask is a Param, so masked shapes stay parseable idiom
        assert str(Param("_")) == "$_"
