"""Tests for the parent-axis extension (``..``)."""

import pytest

from repro.errors import RewriteError
from repro.xmlmodel.parser import parse_document
from repro.xpath.ast import PARENT, Parent
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath

DOC = """
<shop>
  <aisle n="1"><item><price>3</price></item><item><price>9</price></item></aisle>
  <aisle n="2"><item><price>4</price></item></aisle>
</shop>
"""


@pytest.fixture(scope="module")
def shop():
    return parse_document(DOC)


class TestParsing:
    def test_parse_parent(self):
        assert parse_xpath("..") == PARENT

    def test_parse_in_path(self):
        query = parse_xpath("item/../item")
        assert isinstance(query.left.right, Parent)

    def test_roundtrip(self):
        for text in ("..", "a/..", "a/../b", "a[../b]"):
            query = parse_xpath(text)
            assert parse_xpath(str(query)) == query

    def test_dot_dot_distinct_from_two_dots(self):
        # './.' is two epsilon steps; '..' is one parent step
        assert parse_xpath("./.") != parse_xpath("..")


class TestEvaluation:
    def test_parent_step(self, shop):
        prices = evaluate(parse_xpath("aisle/item/price"), shop)
        parents = evaluate(parse_xpath(".."), prices)
        assert {node.label for node in parents} == {"item"}

    def test_parent_dedup(self, shop):
        items = evaluate(parse_xpath("aisle/item"), shop)
        aisles = evaluate(parse_xpath(".."), items)
        assert len(aisles) == 2  # three items, two distinct aisles

    def test_root_has_no_parent(self, shop):
        assert evaluate(parse_xpath(".."), shop) == []

    def test_round_trip_down_up(self, shop):
        result = evaluate(parse_xpath("aisle/item/.."), shop)
        assert {node.get("n") for node in result} == {"1", "2"}

    def test_parent_in_qualifier(self, shop):
        # items in aisle 1 only
        result = evaluate(parse_xpath('//item[../@n = "1"]/price'), shop)
        assert sorted(node.string_value() for node in result) == ["3", "9"]

    def test_virtual_document_node_excluded(self, shop):
        result = evaluate(parse_xpath("/shop/.."), shop)
        assert result == []


class TestRewriteRefusal:
    def test_rewrite_raises_with_explanation(self, nurse_view):
        from repro.core.rewrite import Rewriter

        rewriter = Rewriter(nurse_view)
        with pytest.raises(RewriteError) as info:
            rewriter.rewrite(parse_xpath("//patient/../.."))
        assert "upward axes" in str(info.value)

    def test_engine_surfaces_the_refusal(self, nurse_view):
        from repro.core.engine import SecureQueryEngine
        from repro.workloads.hospital import (
            hospital_document,
            hospital_dtd,
            nurse_spec,
        )

        dtd = hospital_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
        with pytest.raises(RewriteError):
            engine.query(
                "nurse", "//name/..", hospital_document(seed=1)
            )


class TestOptimizeConservative:
    def test_parent_query_preserved_and_equivalent(self, shop):
        from repro.core.optimize import Optimizer
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd(
            """
            <!ELEMENT shop (aisle*)>
            <!ELEMENT aisle (item*)>
            <!ELEMENT item (price)>
            <!ELEMENT price (#PCDATA)>
            """
        )
        optimizer = Optimizer(dtd)
        for text in ("//price/..", "aisle/item/../item", "//item[..]"):
            query = parse_xpath(text)
            optimized = optimizer.optimize(query)
            expected = {id(n) for n in evaluate(query, shop)}
            actual = {id(n) for n in evaluate(optimized, shop)}
            assert expected == actual, text

    def test_parent_at_root_folds_empty(self):
        from repro.core.optimize import Optimizer
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        optimizer = Optimizer(dtd)
        assert optimizer.optimize(parse_xpath("..")).is_empty

    def test_parent_qualifier_bool(self):
        from repro.core.constraints import path_exists_bool
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>")
        assert path_exists_bool(dtd, PARENT, "a") is True
        assert path_exists_bool(dtd, PARENT, "r") is False


class TestNaivePassthrough:
    def test_parent_kept_in_naive_rewrite(self):
        from repro.core.naive import naive_rewrite

        result = str(naive_rewrite(parse_xpath("a/../b")))
        assert ".." in result
