"""Unit tests for the XPath parser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Absolute,
    Descendant,
    EPSILON,
    Empty,
    Label,
    Param,
    QAnd,
    QAttr,
    QAttrEquals,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Slash,
    TextStep,
    Union,
    Wildcard,
)
from repro.xpath.parser import parse_qualifier, parse_xpath


class TestSteps:
    def test_label(self):
        assert parse_xpath("dept") == Label("dept")

    def test_wildcard(self):
        assert isinstance(parse_xpath("*"), Wildcard)

    def test_epsilon(self):
        assert parse_xpath(".") is not None
        assert parse_xpath(".") == EPSILON

    def test_empty_query(self):
        assert isinstance(parse_xpath("0"), Empty)

    def test_text(self):
        assert isinstance(parse_xpath("text()"), TextStep)

    def test_label_named_text_without_parens(self):
        assert parse_xpath("text") == Label("text")

    def test_dotted_dashed_names(self):
        assert parse_xpath("r-e.warranty") == Label("r-e.warranty")


class TestComposition:
    def test_child_chain(self):
        query = parse_xpath("a/b/c")
        assert isinstance(query, Slash)
        assert str(query) == "a/b/c"

    def test_descendant_in_path(self):
        query = parse_xpath("a//b")
        assert isinstance(query.right, Descendant)

    def test_leading_slash_absolute(self):
        query = parse_xpath("/a/b")
        assert isinstance(query, Absolute)

    def test_leading_descendant_absolute(self):
        query = parse_xpath("//a")
        assert isinstance(query, Absolute)
        assert isinstance(query.inner, Descendant)

    def test_union(self):
        query = parse_xpath("a | b | c")
        assert isinstance(query, Union)
        assert len(query.branches) == 3

    def test_union_in_parens_mid_path(self):
        query = parse_xpath("a/(b | c)/d")
        assert str(query) == "a/(b | c)/d"

    def test_unicode_aliases(self):
        assert parse_xpath("a ∪ b") == parse_xpath("a | b")
        assert parse_xpath("a[b ∧ c]") == parse_xpath("a[b and c]")
        assert parse_xpath("a[¬(b)]") == parse_xpath("a[not(b)]")


class TestQualifiers:
    def test_existence(self):
        query = parse_xpath("a[b]")
        assert isinstance(query, Qualified)
        assert isinstance(query.qualifier, QPath)

    def test_relative_descendant_inside_qualifier(self):
        # the paper's fragment: [//x] tests for a *descendant* x
        query = parse_xpath("a[//b]")
        assert isinstance(query.qualifier.path, Descendant)
        assert not isinstance(query.qualifier.path, Absolute)

    def test_equality_with_string(self):
        query = parse_xpath('a[b = "5"]')
        assert isinstance(query.qualifier, QEquals)
        assert query.qualifier.value == "5"

    def test_equality_with_number_token(self):
        query = parse_xpath("a[b = 5]")
        assert query.qualifier.value == "5"

    def test_equality_with_parameter(self):
        query = parse_xpath("a[b = $ward]")
        assert query.qualifier.value == Param("ward")

    def test_boolean_precedence_and_over_or(self):
        qualifier = parse_xpath("x[a or b and c]").qualifier
        assert isinstance(qualifier, QOr)
        assert isinstance(qualifier.right, QAnd)

    def test_parenthesized_boolean(self):
        qualifier = parse_xpath("x[(a or b) and c]").qualifier
        assert isinstance(qualifier, QAnd)
        assert isinstance(qualifier.left, QOr)

    def test_not(self):
        qualifier = parse_xpath("x[not(a)]").qualifier
        assert isinstance(qualifier, QNot)

    def test_attribute_tests(self):
        assert isinstance(parse_xpath("x[@id]").qualifier, QAttr)
        equals = parse_xpath('x[@id = "1"]').qualifier
        assert isinstance(equals, QAttrEquals)
        assert equals.value == "1"

    def test_stacked_qualifiers(self):
        query = parse_xpath("a[b][c]")
        assert isinstance(query, Qualified)
        assert isinstance(query.path, Qualified)

    def test_qualifier_with_path_union(self):
        qualifier = parse_xpath("x[(a | b)/c]").qualifier
        assert isinstance(qualifier, QPath)

    def test_nested_qualifier(self):
        query = parse_xpath("a[b[c]]")
        assert isinstance(query.qualifier.path, Qualified)

    def test_parse_qualifier_helper(self):
        qualifier = parse_qualifier("[company-id and contact-info]")
        assert isinstance(qualifier, QAnd)
        bare = parse_qualifier("company-id")
        assert isinstance(bare, QPath)

    def test_true_false_literals(self):
        from repro.xpath.ast import QBool

        assert parse_qualifier("true()") == QBool(True)
        assert parse_qualifier("false()") == QBool(False)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "a/",
            "a[b",
            "a]",
            "a[b = ]",
            "a b",
            "/",
            "a[@]",
            'a["unterminated]',
            "a[$p]",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(text)

    def test_error_carries_offset(self):
        with pytest.raises(XPathSyntaxError) as info:
            parse_xpath("a[b = ]")
        assert info.value.position is not None


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a/b/c",
            "//a//b",
            "/a/b//c",
            "(a | b/c)",
            "a[b and not(c or d)]",
            'a[b = "x"][c]',
            "*[text() = $p]",
            "a/(b | c)/d",
            "dept[*/patient/wardNo = $wardNo]",
            "//buyer-info[company-id and contact-info]",
        ],
    )
    def test_parse_str_parse_fixpoint(self, text):
        once = parse_xpath(text)
        twice = parse_xpath(str(once))
        assert once == twice
