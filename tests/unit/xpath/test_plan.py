"""Compiled plans must be drop-in equivalents of the interpreter:
identical result lists (content *and* order) and identical ``visits``
counters, with and without a document index."""

import pytest

from repro.workloads.hospital import hospital_document, hospital_dtd
from repro.xmlmodel.index import build_index
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import CompiledPlan, PlanRuntime, compile_path

QUERIES = [
    ".",
    "0",
    "*",
    "//patient",
    "/hospital/dept",
    "//dept/patientInfo/patient/name",
    "//patient/name/text()",
    "//patient[wardNo]",
    '//patient[wardNo = "2"]/name',
    "//treatment//medication",
    "(//patient/name | //staffInfo/name)",
    "//dept[*//bill]//patient",
    "//patient[not(wardNo) or name]",
    "//patient/..",
    "//patient[name and wardNo]",
]


@pytest.fixture(scope="module")
def document():
    return hospital_document(seed=11, max_branch=4)


@pytest.fixture(scope="module")
def index(document):
    return build_index(document)


@pytest.mark.parametrize("text", QUERIES)
@pytest.mark.parametrize("ordered", [False, True])
def test_plan_matches_interpreter(document, text, ordered):
    query = parse_xpath(text)
    evaluator = XPathEvaluator()
    expected = evaluator.evaluate(query, document, ordered=ordered)
    runtime = PlanRuntime()
    actual = compile_path(query).execute(
        document, ordered=ordered, runtime=runtime
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]
    assert runtime.visits == evaluator.visits


@pytest.mark.parametrize("text", QUERIES)
def test_plan_matches_interpreter_with_index(document, index, text):
    query = parse_xpath(text)
    evaluator = XPathEvaluator(index=index)
    expected = evaluator.evaluate(query, document, ordered=True)
    runtime = PlanRuntime(index)
    actual = compile_path(query).execute(
        document, ordered=True, runtime=runtime
    )
    assert [id(node) for node in actual] == [id(node) for node in expected]
    assert runtime.visits == evaluator.visits


def test_plan_reusable_across_documents():
    plan = compile_path(parse_xpath("//patient/name"))
    for seed in (1, 2, 3):
        document = hospital_document(seed=seed, max_branch=3)
        expected = XPathEvaluator().evaluate(
            parse_xpath("//patient/name"), document
        )
        assert len(plan.execute(document)) == len(expected)


def test_index_fallback_outside_indexed_tree(document):
    """Contexts outside the indexed tree silently fall back to walks."""
    other = hospital_document(seed=23, max_branch=3)
    index = build_index(document)
    plan = compile_path(parse_xpath("//patient"))
    walked = plan.execute(other)  # no index at all
    indexed = plan.execute(other, index=index)  # index of the wrong tree
    assert [id(node) for node in indexed] == [id(node) for node in walked]


def test_runtime_accumulates_across_executions(document):
    plan = compile_path(parse_xpath("//patient"))
    runtime = PlanRuntime()
    plan.execute(document, runtime=runtime)
    first = runtime.visits
    assert first > 0
    plan.execute(document, runtime=runtime)
    assert runtime.visits == 2 * first
    runtime.reset_counters()
    assert runtime.visits == 0


def test_plan_repr_and_operator_count():
    plan = compile_path(parse_xpath("//patient[wardNo]/name"))
    assert isinstance(plan, CompiledPlan)
    assert plan.operator_count > 3
    assert "CompiledPlan" in repr(plan)


def test_unbound_parameter_raises(document):
    from repro.errors import XPathEvaluationError

    plan = compile_path(parse_xpath("//patient[wardNo = $w]"))
    with pytest.raises(XPathEvaluationError):
        plan.execute(document)
