"""Unit tests for ascending sub-query enumeration (used by the
dynamic programs of Figures 6 and 10)."""

from repro.xpath.ast import Label, Path, Qualifier
from repro.xpath.parser import parse_xpath
from repro.xpath.subqueries import (
    ascending_subqueries,
    path_subqueries,
    qualifier_subqueries,
)


def test_children_precede_parents():
    query = parse_xpath("a/b[c and d]/e")
    ordered = ascending_subqueries(query)
    positions = {node: index for index, node in enumerate(ordered)}
    for node in ordered:
        for child in node.children():
            assert positions[child] < positions[node]


def test_last_entry_is_query_itself():
    query = parse_xpath("//a[b]/c | d")
    assert ascending_subqueries(query)[-1] is query


def test_structural_dedup():
    query = parse_xpath("a/b | a/b")
    # smart-constructor dedup collapses identical union branches, so
    # build a structurally duplicated query another way
    query = parse_xpath("a[b]/a[b]")
    ordered = ascending_subqueries(query)
    labels = [node for node in ordered if node == Label("a")]
    assert len(labels) == 1


def test_single_step():
    assert ascending_subqueries(Label("x")) == [Label("x")]


def test_split_by_kind():
    query = parse_xpath("a[b and c]/d")
    paths = path_subqueries(query)
    qualifiers = qualifier_subqueries(query)
    assert all(isinstance(node, Path) for node in paths)
    assert all(isinstance(node, Qualifier) for node in qualifiers)
    assert len(qualifiers) == 3  # [b], [c], [b and c]


def test_counts_against_size():
    query = parse_xpath("a/b/c/d")
    # dedup never yields more entries than AST nodes
    assert len(ascending_subqueries(query)) <= query.size()
